"""Integration tests: every figure experiment runs and reproduces the
paper's qualitative shape (who wins, directions of change).

Sizes are reduced via monkeypatching for test speed; the benchmarks run
the real sweeps.
"""

import pytest

import repro.bench.figures.common as common
from repro.bench.figures import (
    ablations,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
)

TEST_SIZES = [1 << 14, 1 << 16]


@pytest.fixture(autouse=True)
def small_sweeps(monkeypatch):
    monkeypatch.setattr(common, "QUICK_SIZES", TEST_SIZES)
    monkeypatch.setattr(common, "PROFILE_QUERIES", 1024)


class TestFig07:
    def test_shapes(self):
        table = fig07.run()
        n = TEST_SIZES[-1]
        for tree in ("implicit", "regular"):
            ss = table.value("tlb_misses_per_query", n=n, tree=tree,
                             config="small/small")
            hs = table.value("tlb_misses_per_query", n=n, tree=tree,
                             config="huge/small")
            hh = table.value("tlb_misses_per_query", n=n, tree=tree,
                             config="huge/huge")
            assert ss >= hs >= hh
            # huge/small is bounded by one miss per query
            assert hs <= 1.0
            # all-huge pages are fastest (Fig 7b)
            assert (table.value("mqps", n=n, tree=tree, config="huge/huge")
                    >= table.value("mqps", n=n, tree=tree,
                                   config="small/small"))

    def test_misses_grow_with_tree(self):
        table = fig07.run()
        small_n, big_n = TEST_SIZES[0], TEST_SIZES[-1]
        assert (table.value("tlb_misses_per_query", n=big_n,
                            tree="implicit", config="small/small")
                >= table.value("tlb_misses_per_query", n=small_n,
                               tree="implicit", config="small/small"))


class TestFig08:
    def test_swp_improves_throughput(self):
        table = fig08.run()
        for n in TEST_SIZES:
            base = table.value("mqps", n=n, variant="sequential-noswp")
            swp = table.value("mqps", n=n, variant="hierarchical-simd")
            # paper: +108-152%
            assert swp / base > 1.5

    def test_swp_raises_latency(self):
        table = fig08.run()
        n = TEST_SIZES[0]
        assert (table.value("latency_us", n=n, variant="sequential")
                > table.value("latency_us", n=n, variant="sequential-noswp"))

    def test_requires_avx2(self, m1):
        with pytest.raises(ValueError):
            fig08.run(machine=m1)


class TestFig09:
    def test_btree_beats_fast(self):
        table = fig09.run()
        for row in table.rows:
            assert 1.0 <= row["btree_over_fast"] <= 2.5


class TestFig10:
    def test_strategy_ordering(self):
        table = fig10.run(n=1 << 16)
        for tree in ("implicit", "regular"):
            seq = table.value("mqps", tree=tree, strategy="sequential")
            pipe = table.value("mqps", tree=tree, strategy="pipelined")
            db = table.value("mqps", tree=tree, strategy="double_buffered")
            assert seq < pipe <= db
            # paper: double buffering roughly doubles sequential
            assert db / seq > 1.6


class TestFig11:
    def test_latency_monotone_in_bucket_size(self):
        table = fig11.run(n=1 << 16)
        for tree in ("implicit", "regular"):
            lats = [r["latency_us"] for r in table.select(tree=tree)]
            assert lats == sorted(lats)

    def test_throughput_non_decreasing(self):
        table = fig11.run(n=1 << 16)
        for tree in ("implicit", "regular"):
            qps = [r["mqps"] for r in table.select(tree=tree)]
            assert all(b >= a * 0.98 for a, b in zip(qps, qps[1:]))


class TestFig12:
    def test_zipf_fastest(self):
        table = fig12.run(n=1 << 16)
        for tree in ("implicit", "regular"):
            zipf = table.value("vs_uniform", tree=tree, distribution="zipf")
            assert zipf > 1.15
            for dist in ("normal", "gamma"):
                mild = table.value("vs_uniform", tree=tree,
                                   distribution=dist)
                assert 0.75 <= mild <= 1.5


class TestFig13:
    def test_parallel_async_speedup(self):
        table = fig13.run()
        n = table.rows[0]["n"]
        s1 = table.value("muqps", n=n, method="async-1t")
        mt = table.value("muqps", n=n, method="async-mt")
        assert 2.0 <= mt / s1 <= 4.0

    def test_transfer_grows_with_tree(self):
        table = fig13.run()
        rows = table.select(method="iseg-transfer")
        times = [r["transfer_us"] for r in rows]
        assert times == sorted(times)


class TestFig14:
    def test_crossover_direction(self):
        table = fig14.run()
        assert table.rows[0]["winner"] == "sync"
        assert table.rows[-1]["winner"] == "async"


class TestFig15:
    def test_transfer_share_small(self):
        table = fig15.run()
        for row in table.rows:
            # T_init dominates at tiny trees; the share must still be
            # far below parity and fall toward the paper's 3-7% band
            assert row["transfer_pct"] < 25.0
        assert table.rows[-1]["transfer_pct"] < 15.0

    def test_share_shrinks_with_size(self):
        table = fig15.run()
        shares = [r["transfer_pct"] for r in table.rows]
        assert shares[-1] <= shares[0]


class TestFig16:
    def test_hybrid_wins_at_scale(self):
        table = fig16.run()
        n = TEST_SIZES[-1]
        hb = table.value("mqps", n=n, tree="hb-implicit")
        cpu = table.value("mqps", n=n, tree="cpu-implicit")
        assert hb > cpu
        hbr = table.value("mqps", n=n, tree="hb-regular")
        cpur = table.value("mqps", n=n, tree="cpu-regular")
        assert hbr > cpur

    def test_hybrid_latency_much_higher(self):
        table = fig16.run()
        n = TEST_SIZES[-1]
        assert (table.value("latency_us", n=n, tree="hb-implicit")
                > 20 * table.value("latency_us", n=n, tree="cpu-implicit"))

    def test_cpu_declines_with_size(self):
        table = fig16.run()
        first, last = TEST_SIZES[0], TEST_SIZES[-1]
        assert (table.value("mqps", n=last, tree="cpu-implicit")
                < table.value("mqps", n=first, tree="cpu-implicit"))

    def test_32bit_variant_runs(self):
        table = fig16.run(key_bits=32)
        assert len(table.rows) == 4 * len(TEST_SIZES)


class TestFig17:
    def test_advantage_shrinks_with_matches(self):
        table = fig17.run(n=1 << 16)
        adv = [r["hb_advantage_pct"] for r in table.rows]
        assert adv[-1] < adv[0]
        # long scans approach parity, short scans show a clear win
        assert adv[0] > 40.0


class TestFig18:
    def test_balancing_recovers_throughput(self):
        table = fig18.run()
        for row in table.rows:
            assert row["hb_balanced_mqps"] > row["hb_plain_mqps"]

    def test_plain_hybrid_loses_on_m2(self):
        table = fig18.run()
        n = TEST_SIZES[-1]
        assert table.value("plain_vs_cpu", n=n) < 1.0


class TestFig19:
    def test_fanout9_beats_fanout8(self):
        table = fig19.run()
        for n in TEST_SIZES:
            f9 = table.value("mqps", n=n, tree="cpu-implicit-f9")
            f8 = table.value("mqps", n=n, tree="hb-implicit-f8")
            assert f9 >= f8


class TestFig20:
    def test_throughput_grows_then_saturates(self):
        table = fig20.run(n=1 << 16)
        qps = [r["mqps"] for r in table.rows]
        assert all(b >= a * 0.999 for a, b in zip(qps, qps[1:]))
        p16 = table.value("speedup", pipeline_len=16)
        p32 = table.value("speedup", pipeline_len=32)
        assert 1.7 <= p16 <= 3.2
        assert p32 == pytest.approx(p16, rel=0.02)

    def test_latency_grows_with_length(self):
        table = fig20.run(n=1 << 16)
        lats = [r["latency_us"] for r in table.rows]
        assert lats[1:] == sorted(lats[1:])
        assert table.value("latency_factor", pipeline_len=16) > 4.0


class TestFig21:
    def test_throughput_decreases_with_updates(self):
        table = fig21.run(n=1 << 15)
        a = [r["async_mops"] for r in table.rows]
        s = [r["sync_mops"] for r in table.rows]
        assert a == sorted(a, reverse=True)
        assert s == sorted(s, reverse=True)

    def test_sync_degrades_faster(self):
        table = fig21.run(n=1 << 15)
        first, last = table.rows[0], table.rows[-1]
        drop_async = first["async_mops"] / last["async_mops"]
        drop_sync = first["sync_mops"] / last["sync_mops"]
        assert drop_sync > drop_async


class TestExtensions:
    def test_gpu_update_speedup_grows_with_batch(self):
        from repro.bench.figures import extensions
        table = extensions.run_gpu_update(n=1 << 15)
        speedups = [r["speedup"] for r in table.rows]
        assert speedups[-1] > 1.0

    def test_framework_decisions_split_by_machine(self):
        from repro.bench.figures import extensions
        table = extensions.run_framework(n=1 << 14)
        for row in table.select(machine="M1"):
            assert row["mode"] == "hybrid"
        for row in table.select(machine="M2"):
            assert row["mode"] in ("balanced", "cpu-only")
            assert row["predicted_mqps"] >= row["cpu_only_mqps"]

    def test_modern_hw_preserves_the_win(self):
        from repro.bench.figures import extensions
        # default size: the modern machine's (scaled) LLC swallows tiny
        # trees entirely, which would mask the comparison
        table = extensions.run_modern_hw()
        for row in table.rows:
            assert row["hybrid_advantage"] > 1.2

    def test_l2_bias_shrinks_with_tree_size(self):
        from repro.bench.figures import extensions
        table = extensions.run_l2()
        speedups = [r["t2_speedup_if_modeled"] for r in table.rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_all_registry_entries_callable(self):
        from repro.bench.figures import REGISTRY
        assert len(REGISTRY) >= 22
        for fn in REGISTRY.values():
            assert callable(fn)


class TestAblations:
    def test_txn_size_prefers_64(self):
        table = ablations.run_txn_size(n=1 << 14)
        rows = {r["txn_bytes"]: r["bytes_per_query"] for r in table.rows}
        assert rows[64] <= rows[128]

    def test_node_index_saves_lines(self):
        table = ablations.run_node_index(n=1 << 14)
        assert (table.value("lines_per_query", layout="indexed (paper)")
                < table.value("lines_per_query", layout="flat-scan"))

    def test_buffers(self):
        table = ablations.run_buffers(n=1 << 14)
        assert len(table.rows) == 3
        one = table.value("mqps", buffers=1)
        two = table.value("mqps", buffers=2)
        assert two >= one
