"""Readable reprs on the user-facing classes."""

import pytest

from repro import (
    CssTree,
    FastTree,
    HBPlusTree,
    ImplicitCpuBPlusTree,
    ImplicitHBPlusTree,
    RegularCpuBPlusTree,
)
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(800, seed=101)


@pytest.mark.parametrize("cls,token", [
    (ImplicitCpuBPlusTree, "ImplicitCpuBPlusTree"),
    (RegularCpuBPlusTree, "RegularCpuBPlusTree"),
    (CssTree, "CssTree"),
    (FastTree, "FastTree"),
])
def test_cpu_tree_reprs(data, cls, token):
    keys, values = data
    text = repr(cls(keys, values))
    assert token in text
    assert "n=800" in text
    assert "bits=64" in text


def test_hybrid_reprs(data, m1):
    keys, values = data
    hi = repr(ImplicitHBPlusTree(keys, values, machine=m1))
    assert "ImplicitHBPlusTree" in hi and "machine='M1'" in hi
    hr = repr(HBPlusTree(keys, values, machine=m1))
    assert "HBPlusTree" in hr and "iseg=" in hr
