"""Experiment-table infrastructure."""

import pytest

from repro.bench.harness import ExperimentTable, geometric_mean


class TestExperimentTable:
    def make(self):
        t = ExperimentTable("exp", "desc")
        t.add(n=1, mqps=10.0)
        t.add(n=2, mqps=20.0)
        return t

    def test_columns_in_insertion_order(self):
        t = self.make()
        t.add(n=3, mqps=5.0, extra="x")
        assert t.columns() == ["n", "mqps", "extra"]

    def test_column_values(self):
        t = self.make()
        assert t.column("mqps") == [10.0, 20.0]

    def test_select(self):
        t = self.make()
        assert t.select(n=2) == [{"n": 2, "mqps": 20.0}]
        assert t.select(n=99) == []

    def test_value(self):
        t = self.make()
        assert t.value("mqps", n=1) == 10.0

    def test_value_requires_unique_match(self):
        t = self.make()
        t.add(n=1, mqps=11.0)
        with pytest.raises(KeyError):
            t.value("mqps", n=1)

    def test_format_contains_rows_and_notes(self):
        t = self.make()
        t.note("hello note")
        text = t.format()
        assert "exp" in text
        assert "10.00" in text
        assert "hello note" in text

    def test_format_empty(self):
        t = ExperimentTable("e", "d")
        assert "no rows" in t.format()

    def test_missing_cells_render_blank(self):
        t = ExperimentTable("e", "d")
        t.add(a=1)
        t.add(b=2)
        text = t.format()
        assert "a" in text and "b" in text


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geometric_mean([3.0]) == pytest.approx(3.0)

    def test_zero_raises(self):
        # silently dropping a collapsed ratio used to inflate the mean
        with pytest.raises(ValueError):
            geometric_mean([4.0, 0.0])

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([2.0, -1.0])

    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_many_small_values_no_underflow(self):
        # a running product of 1e-300s underflows to 0.0; the log-sum
        # formulation keeps the mean exact
        assert geometric_mean([1e-300] * 4) == pytest.approx(1e-300)
