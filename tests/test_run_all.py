"""The run_all CLI entry point."""

import pytest

import repro.bench.figures.common as common
from repro.bench.run_all import _markdown, main
from repro.bench.harness import ExperimentTable


@pytest.fixture(autouse=True)
def tiny(monkeypatch):
    monkeypatch.setattr(common, "QUICK_SIZES", [1 << 13])
    monkeypatch.setattr(common, "PROFILE_QUERIES", 256)


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["--only", "fig09"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out
        assert "completed" in out

    def test_unknown_experiment(self, capsys):
        assert main(["--only", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_markdown_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        assert main(["--only", "fig09", "--out", str(out_file)]) == 0
        text = out_file.read_text()
        assert text.startswith("# HB+-tree reproduction")
        assert "### fig09" in text
        assert "|" in text


class TestMarkdownFormatter:
    def test_rows_and_notes(self):
        t = ExperimentTable("e1", "desc")
        t.add(a=1, b="x")
        t.note("a note")
        md = _markdown(t)
        assert "| a | b |" in md
        assert "| 1 | x |" in md
        assert "*a note*" in md

    def test_empty_table(self):
        t = ExperimentTable("e2", "d")
        assert "(no rows)" in _markdown(t)
