"""GPU-assisted batch updates (section 7 future work)."""

import numpy as np
import pytest

from repro.core.gpu_update import GpuAssistedUpdater
from repro.core.hbtree import HBPlusTree
from repro.core.update import AsyncBatchUpdater
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_insert_batch


@pytest.fixture(scope="module")
def data():
    return generate_dataset(1 << 14, seed=44)


@pytest.fixture()
def tree(data, m1):
    keys, values = data
    return HBPlusTree(keys, values, machine=m1, fill=0.7)


@pytest.fixture(scope="module")
def batch(data):
    keys, _values = data
    return make_insert_batch(keys, 1500, 64, seed=45)


class TestFunctional:
    def test_inserts_land(self, tree, data, batch):
        keys, values = data
        upd_keys, upd_vals = batch
        stats = GpuAssistedUpdater(tree).apply(upd_keys, upd_vals)
        tree.cpu_tree.check_invariants()
        assert stats.applied == len(upd_keys)
        assert np.array_equal(tree.lookup_batch(upd_keys), upd_vals)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_matches_cpu_updater_result(self, data, batch, m1):
        keys, values = data
        upd_keys, upd_vals = batch
        gpu_tree = HBPlusTree(keys, values, machine=m1, fill=0.7)
        GpuAssistedUpdater(gpu_tree).apply(upd_keys, upd_vals)
        cpu_tree = HBPlusTree(keys, values, machine=m1, fill=0.7)
        AsyncBatchUpdater(cpu_tree).apply(upd_keys, upd_vals)
        assert list(gpu_tree.cpu_tree.items()) == list(cpu_tree.cpu_tree.items())

    def test_overwrites_existing(self, tree, data):
        keys, _values = data
        new_vals = np.arange(300, dtype=np.uint64)
        GpuAssistedUpdater(tree).apply(keys[:300], new_vals)
        assert np.array_equal(tree.lookup_batch(keys[:300]), new_vals)
        assert len(tree) == len(keys)  # no growth on overwrite

    def test_mirror_consistent_after(self, tree, batch):
        upd_keys, upd_vals = batch
        GpuAssistedUpdater(tree).apply(upd_keys, upd_vals)
        literal = tree.gpu_search_bucket_literal(upd_keys[:48])
        vector = tree.gpu_search_bucket(upd_keys[:48]).codes
        assert np.array_equal(literal, vector)

    def test_empty_batch(self, tree):
        stats = GpuAssistedUpdater(tree).apply([], [])
        assert stats.applied == 0
        assert stats.total_ns == 0.0

    def test_splits_redescend(self, data, m1):
        """Force splits: a packed tree must re-descend those inserts
        and still end up correct."""
        keys, values = data
        packed = HBPlusTree(keys, values, machine=m1, fill=1.0)
        upd_keys, upd_vals = make_insert_batch(keys, 600, 64, seed=46)
        stats = GpuAssistedUpdater(packed).apply(upd_keys, upd_vals)
        packed.cpu_tree.check_invariants()
        assert stats.redescended > 0
        assert np.array_equal(packed.lookup_batch(upd_keys), upd_vals)


class TestCostModel:
    def test_step_times_recorded(self, tree, batch):
        upd_keys, upd_vals = batch
        stats = GpuAssistedUpdater(tree).apply(upd_keys, upd_vals)
        assert stats.gpu_locate_ns > 0
        assert stats.transfer_in_ns > 0
        assert stats.transfer_out_ns > 0
        assert stats.total_ns > stats.modify_ns

    def test_beats_cpu_async_for_large_batches(self, data, m1):
        """The future-work hypothesis: offloading the descent pays."""
        keys, values = data
        upd_keys, upd_vals = make_insert_batch(keys, 3000, 64, seed=47)
        t1 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        gpu_stats = GpuAssistedUpdater(t1).apply(upd_keys, upd_vals)
        t2 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        cpu_stats = AsyncBatchUpdater(t2).apply(upd_keys, upd_vals)
        assert gpu_stats.total_ns < cpu_stats.total_ns

    def test_transfer_excludable(self, tree, batch):
        upd_keys, upd_vals = batch
        stats = GpuAssistedUpdater(tree).apply(
            upd_keys, upd_vals, transfer=False
        )
        assert stats.transfer_ns == 0.0
