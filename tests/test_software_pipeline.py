"""Software pipelining executor (Algorithm 2, appendix B.2)."""

import numpy as np
import pytest

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.software_pipeline import SoftwarePipeline
from repro.memsim.mainmem import MemorySystem


@pytest.fixture()
def tree_with_mem(dataset64):
    keys, values = dataset64
    mem = MemorySystem()
    return ImplicitCpuBPlusTree(keys, values, mem=mem), keys, values


class TestCorrectness:
    def test_results_match_plain_lookup(self, tree_with_mem):
        tree, keys, values = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=16)
        got = pipe.run(keys[:256].tolist())
        assert got == [int(v) for v in values[:256]]

    @pytest.mark.parametrize("p", [1, 2, 7, 16, 33])
    def test_any_pipeline_length(self, tree_with_mem, p):
        tree, keys, values = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=p)
        got = pipe.run(keys[:64].tolist())
        assert got == [int(v) for v in values[:64]]

    def test_absent_keys_yield_none(self, tree_with_mem):
        tree, keys, _values = tree_with_mem
        probe = int(keys.max()) + 10
        pipe = SoftwarePipeline(tree, pipeline_len=4)
        assert pipe.run([probe]) == [None]

    def test_partial_last_batch(self, tree_with_mem):
        tree, keys, values = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=16)
        got = pipe.run(keys[:21].tolist())  # 16 + 5
        assert got == [int(v) for v in values[:21]]

    def test_invalid_length_rejected(self, tree_with_mem):
        tree, _k, _v = tree_with_mem
        with pytest.raises(ValueError):
            SoftwarePipeline(tree, pipeline_len=0)


class TestInterleaving:
    def test_level_order_access_pattern(self, dataset64):
        """Algorithm 2 touches level l for ALL in-flight queries before
        level l+1 for any of them."""
        keys, values = dataset64
        mem = MemorySystem()
        tree = ImplicitCpuBPlusTree(keys, values, mem=mem)

        touched = []
        original = mem.touch_line

        def spy(segment, line):
            touched.append((segment.name, line))
            return original(segment, line)

        mem.touch_line = spy
        pipe = SoftwarePipeline(tree, pipeline_len=8)
        pipe.run(keys[:8].tolist())
        # I-segment touches come in contiguous per-level groups of 8
        iseg = [t for t in touched if t[0].endswith(".I")]
        assert len(iseg) == 8 * tree.height
        # level offsets are monotone across groups of 8
        for g in range(tree.height - 1):
            lines_this = {line for _n, line in iseg[g * 8:(g + 1) * 8]}
            lines_next = {line for _n, line in iseg[(g + 1) * 8:(g + 2) * 8]}
            assert max(lines_this) < min(lines_next) or g == 0

    def test_stats_accumulate(self, tree_with_mem):
        tree, keys, _v = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=16)
        pipe.run(keys[:64].tolist())
        assert pipe.stats.queries == 64
        assert (pipe.stats.overlapped_misses + pipe.stats.exposed_misses) > 0

    def test_reset_stats(self, tree_with_mem):
        tree, keys, _v = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=4)
        pipe.run(keys[:8].tolist())
        pipe.reset_stats()
        assert pipe.stats.queries == 0

    def test_effective_mlp_capped(self, tree_with_mem):
        tree, _k, _v = tree_with_mem
        assert SoftwarePipeline(tree, 16).effective_memory_parallelism(10) == 10
        assert SoftwarePipeline(tree, 4).effective_memory_parallelism(10) == 4
        assert SoftwarePipeline(tree, 1).effective_memory_parallelism(10) == 1


class TestStatsLifecycle:
    def test_stats_accumulate_across_runs(self, tree_with_mem):
        tree, keys, _values = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=8)
        pipe.run(keys[:32].tolist())
        first = pipe.stats.queries
        pipe.run(keys[:32].tolist())
        assert pipe.stats.queries == 2 * first

    def test_reset_stats_zeroes_in_place(self, tree_with_mem):
        tree, keys, _values = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=8)
        held = pipe.stats  # callers may hold the live object
        pipe.run(keys[:32].tolist())
        pipe.reset_stats()
        assert held is pipe.stats
        assert pipe.stats.queries == 0
        assert pipe.stats.level_steps == 0
        assert pipe.stats.overlapped_misses == 0
        assert pipe.stats.exposed_misses == 0

    def test_copy_is_detached(self, tree_with_mem):
        tree, keys, _values = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=8)
        pipe.run(keys[:32].tolist())
        snap = pipe.stats.copy()
        pipe.run(keys[:32].tolist())
        assert pipe.stats.queries == 2 * snap.queries

    def test_take_stats_snapshots_and_resets(self, tree_with_mem):
        tree, keys, _values = tree_with_mem
        pipe = SoftwarePipeline(tree, pipeline_len=8)
        pipe.run(keys[:48].tolist())
        snap = pipe.take_stats()
        assert snap.queries == 48
        assert pipe.stats.queries == 0
        pipe.run(keys[:16].tolist())
        assert snap.queries == 48  # detached from further runs
