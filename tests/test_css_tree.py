"""CSS-tree (Rao & Ross) — the third leaf-stored structure."""

import numpy as np
import pytest

from repro.cpu.css_tree import CssTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.keys import KEY64
from repro.memsim.mainmem import MemorySystem


class TestLookup:
    def test_all_keys_found(self, dataset64):
        keys, values = dataset64
        tree = CssTree(keys, values)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_scalar_matches_batch(self, small_dataset64):
        keys, values = small_dataset64
        tree = CssTree(keys, values)
        for k, v in zip(keys[:80].tolist(), values[:80].tolist()):
            assert tree.lookup(k) == v

    def test_absent(self, dataset64):
        keys, values = dataset64
        tree = CssTree(keys, values)
        assert tree.lookup(int(keys.max()) + 1) is None
        present = set(keys.tolist())
        rng = np.random.default_rng(2)
        for probe in rng.choice(2**61, size=30).tolist():
            if int(probe) not in present:
                assert tree.lookup(int(probe)) is None

    def test_single_tuple(self):
        tree = CssTree([7], [70])
        assert tree.height == 0
        assert tree.lookup(7) == 70
        assert tree.lookup(8) is None

    def test_32bit(self, dataset32):
        keys, values = dataset32
        tree = CssTree(keys, values, key_bits=32)
        assert np.array_equal(tree.lookup_batch(keys), values)

    @pytest.mark.parametrize("algo", list(NodeSearchAlgorithm))
    def test_all_search_algorithms(self, small_dataset64, algo):
        keys, values = small_dataset64
        tree = CssTree(keys, values, algorithm=algo)
        for k, v in zip(keys[:40].tolist(), values[:40].tolist()):
            assert tree.lookup(k) == v

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            CssTree([3, 3], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CssTree([], [])

    def test_sentinel_rejected(self):
        with pytest.raises(ValueError):
            CssTree([KEY64.max_value], [1])


class TestStructure:
    def test_directory_smaller_than_btree_inner(self, dataset64):
        """The CSS-tree's whole point: no leaf copies, tiny directory."""
        from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
        keys, values = dataset64
        css = CssTree(keys, values)
        bt = ImplicitCpuBPlusTree(keys, values)
        data_bytes = len(keys) * 16
        assert css.directory_bytes < data_bytes / 4
        # and the directory is no larger than the B+-tree's I-segment
        assert css.directory_bytes <= bt.i_segment_bytes

    def test_runs_cover_all_tuples(self, dataset64):
        keys, values = dataset64
        tree = CssTree(keys, values)
        assert tree.num_runs == -(-len(keys) // tree.fanout)

    def test_instrumented_lookup_touches_directory_plus_run(self, dataset64):
        keys, values = dataset64
        mem = MemorySystem()
        tree = CssTree(keys, values, mem=mem)
        mem.reset_counters()
        tree.lookup(int(keys[0]))
        # height directory lines + the run (2 lines of packed pairs)
        assert mem.counters.line_accesses == tree.height + 2

    def test_overflow_probe_routes_rightmost(self, dataset64):
        keys, values = dataset64
        tree = CssTree(keys, values)
        assert tree.lookup(int(keys.max()) + 12345) is None


class TestRangeQueries:
    def test_window(self, dataset64):
        keys, values = dataset64
        tree = CssTree(keys, values)
        sk = np.sort(keys)
        got = tree.range_query(int(sk[10]), int(sk[60]))
        assert [k for k, _v in got] == sk[10:61].tolist()

    def test_empty(self, dataset64):
        keys, values = dataset64
        tree = CssTree(keys, values)
        assert tree.range_query(5, 4) == []

    def test_values_correct(self, small_dataset64):
        keys, values = small_dataset64
        tree = CssTree(keys, values)
        model = dict(zip(keys.tolist(), values.tolist()))
        sk = np.sort(keys)
        for k, v in tree.range_query(int(sk[0]), int(sk[-1])):
            assert model[k] == v
