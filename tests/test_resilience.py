"""Tests of the resilience layer: retries, repair, degradation and
recovery — faults may cost time, never correctness."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hbtree import HBPlusTree
from repro.core.resilience import (
    CircuitBreaker,
    GpuUnavailable,
    ResilienceConfig,
    ResilienceStats,
    ResilientHBPlusTree,
)
from repro.faults import FaultInjector, FaultPlan
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset

N = 1 << 12


@pytest.fixture(scope="module")
def dataset():
    keys, values = generate_dataset(N, seed=3)
    lut = {int(k): int(v) for k, v in zip(keys, values)}
    return keys, values, lut


def make_resilient(dataset, rate, seed=9, config=None):
    keys, values, _lut = dataset
    tree = HBPlusTree(keys, values, machine=machine_m1())
    injector = FaultInjector(FaultPlan.uniform(rate, seed=seed))
    return ResilientHBPlusTree(tree, injector=injector, config=config)


def check_batches(r, dataset, batches=6, size=1024, seed=5):
    keys, _values, lut = dataset
    rng = np.random.default_rng(seed)
    for _ in range(batches):
        q = rng.choice(keys, size=size)
        out = r.lookup_batch(q)
        expected = np.asarray([lut[int(k)] for k in q], dtype=out.dtype)
        np.testing.assert_array_equal(out, expected)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        br = CircuitBreaker(threshold=3, probe_interval=4)
        assert not br.record_failure()
        assert not br.record_failure()
        assert br.record_failure()  # third consecutive opens it
        assert br.open

    def test_success_resets_consecutive_count(self):
        br = CircuitBreaker(threshold=2, probe_interval=4)
        br.record_failure()
        br.record_success()
        assert not br.record_failure()
        assert not br.open

    def test_trip_opens_directly(self):
        br = CircuitBreaker(threshold=3, probe_interval=4)
        br.trip()
        assert br.open

    def test_probe_cadence(self):
        br = CircuitBreaker(threshold=1, probe_interval=3)
        br.record_failure()
        due = [br.note_degraded_batch() for _ in range(6)]
        assert due == [False, False, True, False, False, True]

    def test_close_resets(self):
        br = CircuitBreaker(threshold=1, probe_interval=3)
        br.record_failure()
        br.close()
        assert not br.open
        assert br.consecutive_failures == 0

    def test_validates_args(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0, probe_interval=1)


class TestBackoff:
    def test_exponential_with_bounded_jitter(self):
        cfg = ResilienceConfig()
        for attempt in range(4):
            base = cfg.backoff_base_ns * cfg.backoff_multiplier ** attempt
            lo = cfg.backoff_ns(attempt, 0.0)
            hi = cfg.backoff_ns(attempt, 1.0)
            assert lo == pytest.approx(base)
            assert hi == pytest.approx(base * (1 + cfg.backoff_jitter))


class TestResilientLookups:
    def test_no_faults_serves_hybrid(self, dataset):
        r = make_resilient(dataset, 0.0)
        check_batches(r, dataset)
        assert r.stats.served_cpu == 0
        assert r.stats.served_hybrid > 0
        assert r.stats.penalty_ns == 0.0
        assert not r.degraded

    def test_moderate_faults_correct_with_retries(self, dataset):
        r = make_resilient(dataset, 0.3)
        check_batches(r, dataset, batches=8)
        s = r.stats
        assert s.transfer_retries + s.kernel_retries > 0
        assert s.penalty_ns > 0
        assert s.penalty_ns <= s.served_ns

    def test_total_gpu_failure_degrades_and_stays_correct(self, dataset):
        r = make_resilient(dataset, 1.0)
        check_batches(r, dataset, batches=8)
        assert r.degraded
        assert r.stats.degradations >= 1
        assert r.stats.served_cpu > 0
        # once open, hybrid attempts stop (except probes)
        assert r.stats.served_hybrid == 0

    def test_lookup_single_key(self, dataset):
        keys, _values, lut = dataset
        r = make_resilient(dataset, 1.0)
        k = int(keys[17])
        assert r.lookup(k) == lut[k]
        assert r.lookup(int(keys.max()) + 3) is None

    def test_deterministic_replay(self, dataset):
        def run():
            r = make_resilient(dataset, 0.35)
            check_batches(r, dataset, batches=6)
            return r.stats.snapshot(), r.tree.injector.schedule()

        stats_a, sched_a = run()
        stats_b, sched_b = run()
        assert stats_a == stats_b
        assert sched_a == sched_b


class TestMirrorRepair:
    def test_bitflip_detected_and_repaired(self, dataset):
        plan = FaultPlan(bitflip=1.0, seed=7)
        keys, values, _lut = dataset
        tree = HBPlusTree(keys, values, machine=machine_m1())
        r = ResilientHBPlusTree(tree, injector=FaultInjector(plan))
        # full buckets amortize the repair cost, so service stays hybrid
        check_batches(r, dataset, batches=4, size=r.bucket_size)
        assert r.stats.checksum_failures == 4
        assert r.stats.repaired_nodes >= 4
        # repaired mirror matches the CPU tree's expected image
        np.testing.assert_array_equal(
            tree.iseg_buffer.array.reshape(-1), tree.pack_i_segment()
        )

    def test_repair_is_targeted_not_full_refresh(self, dataset):
        plan = FaultPlan(bitflip=1.0, seed=7)
        keys, values, _lut = dataset
        tree = HBPlusTree(keys, values, machine=machine_m1())
        r = ResilientHBPlusTree(tree, injector=FaultInjector(plan))
        check_batches(r, dataset, batches=4, size=r.bucket_size)
        assert r.stats.mirror_refreshes == 0

    def test_interrupted_sync_marks_stale_then_repairs(self, dataset):
        keys, values, lut = dataset
        tree = HBPlusTree(keys, values, machine=machine_m1())
        injector = FaultInjector(FaultPlan(sync_interrupt=1.0, seed=2))
        r = ResilientHBPlusTree(tree, injector=injector)
        new_keys = [int(keys[0]) + 5, int(keys[1]) + 7]
        r.apply_updates(new_keys, [111, 222], method="async")
        lut = dict(lut)
        lut[new_keys[0]], lut[new_keys[1]] = 111, 222
        assert r.lookup(new_keys[0]) == 111
        assert r.lookup(new_keys[1]) == 222

    def test_sync_method_faults_counted(self, dataset):
        keys, values, _lut = dataset
        tree = HBPlusTree(keys, values, machine=machine_m1())
        injector = FaultInjector(
            FaultPlan(sync_interrupt=0.5, transfer_fail=0.5, seed=2)
        )
        r = ResilientHBPlusTree(tree, injector=injector)
        upserts = [int(k) for k in keys[:32]]
        r.apply_updates(upserts, list(range(32)), method="sync")
        for k, v in zip(upserts, range(32)):
            assert r.lookup(k) == v


class TestDegradationEconomics:
    def test_intermittent_faults_never_serve_below_cpu_floor(self, dataset):
        """The economic breaker keeps a limping hybrid from underbidding
        the CPU-only path it could degrade to."""
        r = make_resilient(dataset, 0.5)
        check_batches(r, dataset, batches=12, size=r.bucket_size)
        s = r.stats
        floor_qps = 1e9 / r.cpu_only_query_ns
        # transition transients and probe slots cost something, but the
        # steady state must track the CPU-only floor, not fall under it
        assert s.throughput_qps() >= 0.6 * floor_qps

    def test_economic_degradation_counted(self, dataset):
        r = make_resilient(dataset, 0.5)
        check_batches(r, dataset, batches=10, size=r.bucket_size)
        assert r.stats.degradations >= 1


class TestRecovery:
    def test_recovers_after_faults_clear(self, dataset):
        config = ResilienceConfig(probe_interval=2)
        r = make_resilient(dataset, 1.0, config=config)
        check_batches(r, dataset, batches=4)
        assert r.degraded
        r.tree.injector.disable()
        check_batches(r, dataset, batches=8)
        assert not r.degraded
        assert r.stats.recoveries == 1
        assert r.stats.served_hybrid > 0

    def test_failed_probe_charged_flat_budget(self, dataset):
        config = ResilienceConfig(probe_interval=1)
        r = make_resilient(dataset, 1.0, config=config)
        check_batches(r, dataset, batches=4)
        pen0 = r.stats.penalty_ns
        probes0 = r.stats.probes
        check_batches(r, dataset, batches=2)
        probes = r.stats.probes - probes0
        assert probes >= 1
        assert r.stats.penalty_ns - pen0 == pytest.approx(
            probes * config.probe_budget_ns
        )


class TestStats:
    def test_throughput_includes_penalties(self, dataset):
        clean = make_resilient(dataset, 0.0)
        check_batches(clean, dataset, batches=6, size=clean.bucket_size)
        faulty = make_resilient(dataset, 0.3)
        check_batches(faulty, dataset, batches=6, size=faulty.bucket_size)
        assert faulty.stats.throughput_qps() < clean.stats.throughput_qps()

    def test_empty_stats(self):
        s = ResilienceStats()
        assert s.throughput_qps() == 0.0
        assert s.served_queries == 0

    def test_repr_shows_mode(self, dataset):
        r = make_resilient(dataset, 1.0)
        check_batches(r, dataset, batches=6)
        assert "degraded" in repr(r)


class TestFaultProperty:
    """Property: no fault plan can make lookups return wrong answers."""

    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=6, max_size=6
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_fault_plans_never_wrong(self, rates, seed):
        keys, values = generate_dataset(512, seed=8)
        lut = {int(k): int(v) for k, v in zip(keys, values)}
        tree = HBPlusTree(keys, values, machine=machine_m1())
        plan = FaultPlan(
            seed=seed,
            transfer_fail=rates[0],
            transfer_timeout=rates[1],
            kernel_fail=rates[2],
            kernel_hang=rates[3],
            bitflip=rates[4],
            sync_interrupt=rates[5],
        )
        r = ResilientHBPlusTree(tree, injector=FaultInjector(plan))
        rng = np.random.default_rng(seed)
        for _ in range(3):
            q = rng.choice(keys, size=256)
            out = r.lookup_batch(q)
            expected = np.asarray(
                [lut[int(k)] for k in q], dtype=out.dtype
            )
            np.testing.assert_array_equal(out, expected)


class TestEdgeInputs:
    def test_empty_batch_returns_empty(self, dataset):
        r = make_resilient(dataset, 0.5)
        out = r.lookup_batch(np.asarray([], dtype=np.uint64))
        assert len(out) == 0
        assert r.stats.batches == 0
