"""Small-surface unit tests: counters, stats objects, timelines."""

import numpy as np
import pytest

from repro.core.hbtree_implicit import GpuSearchResult, RebuildTimes
from repro.core.pipeline import BucketTimeline, PipelineRun
from repro.core.update import UpdateStats
from repro.memsim.allocator import PageKind, SegmentAllocator
from repro.memsim.metrics import AccessCounters


class TestAccessCounters:
    def test_add_accumulates_every_field(self):
        a = AccessCounters(line_accesses=1, cache_hits=2, queries=3)
        b = AccessCounters(line_accesses=10, cache_misses=5, prefetches=7)
        a.add(b)
        assert a.line_accesses == 11
        assert a.cache_hits == 2
        assert a.cache_misses == 5
        assert a.prefetches == 7
        assert a.queries == 3

    def test_reset(self):
        c = AccessCounters(line_accesses=5, tlb_misses_small=2)
        c.reset()
        assert c.line_accesses == 0
        assert c.tlb_misses == 0

    def test_per_query(self):
        c = AccessCounters(line_accesses=20, queries=4)
        assert c.per_query("line_accesses") == 5.0
        assert AccessCounters().per_query("line_accesses") == 0.0

    def test_cache_hit_rate(self):
        c = AccessCounters(line_accesses=10, cache_hits=7, cache_misses=3)
        assert c.cache_hit_rate == pytest.approx(0.7)
        assert AccessCounters().cache_hit_rate == 0.0

    def test_snapshot_is_plain_dict(self):
        snap = AccessCounters(queries=2).snapshot()
        assert snap["queries"] == 2
        assert isinstance(snap, dict)

    def test_tlb_misses_sums_pools(self):
        c = AccessCounters(tlb_misses_small=3, tlb_misses_huge=4)
        assert c.tlb_misses == 7


class TestStatsObjects:
    def test_update_stats_throughput(self):
        s = UpdateStats(applied=100, modify_ns=1e6, transfer_ns=1e6)
        assert s.throughput_qps(True) == pytest.approx(100 * 1e9 / 2e6)
        assert s.throughput_qps(False) == pytest.approx(100 * 1e9 / 1e6)

    def test_update_stats_zero_time(self):
        # zero-cost batches report 0.0, not inf (inf poisons downstream
        # means and is not valid JSON)
        s = UpdateStats(applied=5)
        assert s.throughput_qps() == 0.0

    def test_deferred_fraction(self):
        s = UpdateStats(applied=90, deferred=10)
        assert s.deferred_fraction == pytest.approx(0.1)
        assert UpdateStats().deferred_fraction == 0.0

    def test_rebuild_times(self):
        t = RebuildTimes(l_segment_ns=80.0, i_segment_ns=20.0,
                         transfer_ns=5.0)
        assert t.total_ns == pytest.approx(105.0)
        assert t.transfer_fraction == pytest.approx(0.05)

    def test_gpu_search_result_per_query(self):
        r = GpuSearchResult(
            leaf_indices=np.arange(4, dtype=np.int64), transactions=12
        )
        assert r.transactions_per_query == 3.0
        empty = GpuSearchResult(
            leaf_indices=np.empty(0, dtype=np.int64), transactions=0
        )
        assert empty.transactions_per_query == 0.0


class TestBucketTimeline:
    def test_completion_and_latency(self):
        t = BucketTimeline(index=0, t1_start=0.0, t1_end=10.0,
                           t2_end=50.0, t3_end=60.0, t4_end=100.0)
        assert t.completion == 100.0
        # avg query waits to mid-T4
        assert t.latency_of_average_query() == pytest.approx(80.0)

    def test_run_properties(self):
        tl = [
            BucketTimeline(0, 0, 10, 50, 60, 100),
            BucketTimeline(1, 10, 20, 90, 100, 150),
        ]
        run = PipelineRun(timelines=tl, bucket_size=1000)
        assert run.makespan_ns == 150.0
        assert run.throughput_qps == pytest.approx(2000 * 1e9 / 150.0)
        assert run.mean_latency_ns > 0

    def test_percentile_validation(self):
        run = PipelineRun(
            timelines=[BucketTimeline(0, 0, 1, 2, 3, 4)], bucket_size=10
        )
        with pytest.raises(ValueError):
            run.latency_percentile_ns(0)
        with pytest.raises(ValueError):
            run.latency_percentile_ns(101)
        assert run.latency_percentile_ns(100) > 0


class TestSegmentDetails:
    def test_page_of(self):
        alloc = SegmentAllocator(small_page=4096, huge_page=1 << 20)
        seg = alloc.allocate("a", 10_000, PageKind.SMALL)
        assert seg.page_of(seg.base) == seg.base // 4096
        assert seg.page_of(seg.base + 5000) == seg.base // 4096 + 1
        with pytest.raises(ValueError):
            seg.page_of(seg.end + 1)

    def test_total_allocated(self):
        alloc = SegmentAllocator()
        alloc.allocate("a", 100, PageKind.SMALL)
        alloc.allocate("b", 200, PageKind.SMALL)
        assert alloc.total_allocated == 300
        alloc.free("a")
        assert alloc.total_allocated == 200
