"""Workload traces: synthesis, persistence, replay."""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.workloads.generators import generate_dataset
from repro.workloads.trace import (
    OpKind,
    WorkloadTrace,
    replay_trace,
    synthesize_trace,
)


@pytest.fixture(scope="module")
def data():
    return generate_dataset(4096, seed=91)


class TestSynthesis:
    def test_length_and_mix(self, data):
        keys, _values = data
        trace = synthesize_trace(keys, 2000, read_ratio=0.8)
        assert len(trace) == 2000
        assert 0.7 <= trace.read_ratio <= 0.9

    def test_pure_read_trace(self, data):
        keys, _values = data
        trace = synthesize_trace(keys, 500, read_ratio=1.0)
        assert trace.read_ratio == 1.0
        assert not np.any(trace.ops == OpKind.UPSERT)

    def test_deterministic(self, data):
        keys, _values = data
        a = synthesize_trace(keys, 300, seed=5)
        b = synthesize_trace(keys, 300, seed=5)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.keys, b.keys)

    def test_temporal_locality(self, data):
        """Consecutive lookups cluster in the key space far more than
        uniform sampling would."""
        keys, _values = data
        trace = synthesize_trace(keys, 2000, read_ratio=1.0,
                                 working_set=0.02, drift_every=10**9)
        sorted_keys = np.sort(keys)
        positions = np.searchsorted(sorted_keys, trace.keys)
        spread = positions.max() - positions.min()
        assert spread < 0.1 * len(keys)

    def test_drift_moves_the_window(self, data):
        keys, _values = data
        trace = synthesize_trace(keys, 4000, read_ratio=1.0,
                                 working_set=0.02, drift_every=500)
        sorted_keys = np.sort(keys)
        positions = np.searchsorted(sorted_keys, trace.keys)
        early = positions[:500].mean()
        late = positions[-500:].mean()
        assert abs(late - early) > 0.05 * len(keys)

    def test_invalid_params(self, data):
        keys, _values = data
        with pytest.raises(ValueError):
            synthesize_trace(keys, 10, read_ratio=1.5)
        with pytest.raises(ValueError):
            synthesize_trace(keys, 10, working_set=0.0)

    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError):
            WorkloadTrace(
                ops=np.zeros(2, dtype=np.int8),
                keys=np.zeros(3, dtype=np.uint64),
                values=np.zeros(2, dtype=np.uint64),
            )


class TestPersistence:
    def test_round_trip(self, data, tmp_path):
        keys, _values = data
        trace = synthesize_trace(keys, 400)
        path = trace.save(tmp_path / "t")
        loaded = WorkloadTrace.load(path)
        assert np.array_equal(loaded.ops, trace.ops)
        assert np.array_equal(loaded.keys, trace.keys)
        assert np.array_equal(loaded.values, trace.values)
        assert loaded.key_bits == 64


class TestReplay:
    def test_replay_on_regular_tree(self, data):
        keys, values = data
        tree = RegularCpuBPlusTree(keys, values, fill=0.7)
        trace = synthesize_trace(keys, 1500, read_ratio=0.7, seed=7)
        stats = replay_trace(trace, tree)
        tree.check_invariants()
        assert stats.operations == len(trace)
        assert stats.hit_rate > 0.9  # hot-window lookups mostly hit

    def test_replay_matches_manual_application(self, data):
        keys, values = data
        trace = synthesize_trace(keys, 800, read_ratio=0.5, seed=9)
        tree = RegularCpuBPlusTree(keys, values, fill=0.7)
        replay_trace(trace, tree)
        # a reference dict applying the same ops must agree
        model = dict(zip(keys.tolist(), values.tolist()))
        for op, key, value in zip(trace.ops.tolist(), trace.keys.tolist(),
                                  trace.values.tolist()):
            if op == OpKind.UPSERT:
                model[key] = value
            elif op == OpKind.DELETE:
                model.pop(key, None)
        assert dict(tree.items()) == model

    def test_replay_on_hybrid_keeps_mirror_fresh(self, data, m1):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1, fill=0.7)
        trace = synthesize_trace(keys, 600, read_ratio=0.6, seed=11)
        replay_trace(trace, tree)
        upserted = trace.keys[trace.ops == OpKind.UPSERT][:32]
        deleted = set(trace.keys[trace.ops == OpKind.DELETE].tolist())
        upserted = np.asarray(
            [k for k in upserted.tolist() if k not in deleted],
            dtype=np.uint64,
        )
        if len(upserted):
            out = tree.lookup_batch(upserted)
            assert np.all(out != tree.spec.max_value)

    def test_range_ops_count_tuples(self, data):
        keys, values = data
        tree = RegularCpuBPlusTree(keys, values)
        trace = synthesize_trace(keys, 400, read_ratio=1.0,
                                 range_share=0.5, seed=13)
        stats = replay_trace(trace, tree)
        assert stats.ranges > 0
        assert stats.range_tuples >= stats.ranges

    def test_range_replay_matches_model(self, data):
        """Every RANGE op in a mixed trace returns exactly the live
        tuples a reference dict predicts at that point in the stream —
        the vectorised leaf-chain scan, replayed mid-mutation, stays
        exact on the regular and the gapped tree."""
        from repro.cpu.gapped import GappedCpuBPlusTree

        keys, values = data
        trace = synthesize_trace(keys, 1200, read_ratio=0.7,
                                 range_share=0.3, range_span=48,
                                 seed=17)
        assert int(np.sum(trace.ops == OpKind.RANGE)) > 0
        for cls, kwargs in ((RegularCpuBPlusTree, {"fill": 0.8}),
                            (GappedCpuBPlusTree, {"fill": 0.6})):
            tree = cls(keys, values, **kwargs)
            model = dict(zip(keys.tolist(), values.tolist()))
            for op, key, value in zip(trace.ops.tolist(),
                                      trace.keys.tolist(),
                                      trace.values.tolist()):
                if op == OpKind.UPSERT:
                    tree.insert(int(key), int(value))
                    model[key] = value
                elif op == OpKind.DELETE:
                    tree.delete(int(key))
                    model.pop(key, None)
                elif op == OpKind.LOOKUP:
                    tree.lookup(int(key), instrument=False)
                elif op == OpKind.RANGE:
                    expected = sorted(
                        (k, v) for k, v in model.items()
                        if key <= k <= value
                    )
                    assert tree.range_query(int(key), int(value)) \
                        == expected
            tree.check_invariants()
