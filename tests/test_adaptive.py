"""Online adaptive load balancing: windows, hysteresis, determinism,
engine integration and the resilience handshake (DESIGN.md §11)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    RegularModeBalancer,
    StaticSplit,
    split_levels,
)
from repro.core.batching import BatchingEngine
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import DiscoveryResult, SplitCostModel
from repro.core.overlap import OverlappedEngine
from repro.core.resilience import ResilienceConfig, ResilientHBPlusTree
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observability
from repro.platform.configs import machine_m1, machine_m2
from repro.workloads.generators import generate_dataset
from repro.workloads.trace import synthesize_drift_lookups


@pytest.fixture(scope="module")
def data():
    return generate_dataset(1 << 13, seed=41)


@pytest.fixture()
def itree(data, m1):
    keys, values = data
    return ImplicitHBPlusTree(keys, values, machine=m1)


#: a drift config that moves eagerly — every window may rebalance
EAGER = AdaptiveConfig(window_buckets=2, sample_size=512,
                       hysteresis_gain=0.0, confirm_windows=1)


class TestSplitLevels:
    def test_zero_split_is_all_gpu(self):
        assert np.array_equal(split_levels(8, 0, 0.0, 5), np.zeros(8))

    def test_full_split_is_all_cpu(self):
        assert np.array_equal(split_levels(8, 5, 1.0, 5), np.full(8, 5))

    def test_ratio_cuts_the_bucket(self):
        levels = split_levels(8, 2, 0.5, 5)
        assert np.array_equal(levels[:4], np.full(4, 3))
        assert np.array_equal(levels[4:], np.full(4, 2))

    def test_depth_clamped_to_height(self):
        assert split_levels(4, 9, 1.0, 5).max() == 5


class ScriptedBalancer(SplitCostModel):
    """Scripted discover() outcomes, for driving the hysteresis logic
    without a tree: each entry is ((depth, ratio), candidate_cost,
    current_cost)."""

    tree = None

    def __init__(self, height, script):
        self._height = height
        self._script = list(script)
        self._calls = 0
        self._current = 1.0
        self.depth, self.ratio = 0, 0.0
        self.profiled = []

    @property
    def height(self):
        return self._height

    def reprofile(self, sample=None, sample_size=2048):
        self.profiled.append(sample)

    def discover(self, bucket_size=None):
        split, cost, current = self._script[
            min(self._calls, len(self._script) - 1)
        ]
        self._calls += 1
        self._current = current
        self.depth, self.ratio = split
        return DiscoveryResult(depth=split[0], ratio=split[1],
                               samples=[], cost_ns=cost)

    def balanced_cost_ns(self, depth, ratio, bucket_size=None):
        return self._current


def feed_windows(controller, n_windows, bucket_queries=256):
    """Push enough buckets to close ``n_windows`` windows."""
    cfg = controller.config
    rng = np.random.default_rng(7)
    for _ in range(n_windows * cfg.window_buckets):
        controller.note_bucket(
            rng.integers(0, 1 << 20, size=bucket_queries)
        )


class TestHysteresis:
    def test_insufficient_gain_never_moves(self):
        bal = ScriptedBalancer(4, [((2, 0.5), 96.0, 100.0)])  # 4% gain
        c = AdaptiveController(
            bal, config=AdaptiveConfig(window_buckets=2,
                                       hysteresis_gain=0.05,
                                       confirm_windows=1),
            discover_on_init=False,
        )
        feed_windows(c, 4)
        assert c.split() == (0, 0.0)
        assert c.stats.rebalances == 0
        assert c.stats.proposals == 0

    def test_candidate_must_confirm_across_windows(self):
        bal = ScriptedBalancer(4, [((2, 0.5), 50.0, 100.0)])  # 50% gain
        c = AdaptiveController(
            bal, config=AdaptiveConfig(window_buckets=2,
                                       hysteresis_gain=0.05,
                                       confirm_windows=3),
            discover_on_init=False,
        )
        feed_windows(c, 2)
        assert c.split() == (0, 0.0)  # two confirmations are not three
        feed_windows(c, 1)
        assert c.split() == (2, 0.5)
        assert c.stats.rebalances == 1

    def test_changing_candidate_resets_the_streak(self):
        script = [
            ((2, 0.5), 50.0, 100.0),
            ((3, 0.5), 50.0, 100.0),  # different candidate: streak resets
            ((3, 0.5), 50.0, 100.0),
        ]
        bal = ScriptedBalancer(4, script)
        c = AdaptiveController(
            bal, config=AdaptiveConfig(window_buckets=2,
                                       hysteresis_gain=0.05,
                                       confirm_windows=2),
            discover_on_init=False,
        )
        feed_windows(c, 2)
        assert c.split() == (0, 0.0)
        feed_windows(c, 1)  # second consecutive win for (3, 0.5)
        assert c.split() == (3, 0.5)

    def test_applied_split_restored_on_balancer_after_evaluation(self):
        bal = ScriptedBalancer(4, [((2, 0.5), 96.0, 100.0)])
        c = AdaptiveController(
            bal, config=AdaptiveConfig(window_buckets=2,
                                       hysteresis_gain=0.05),
            discover_on_init=False,
        )
        feed_windows(c, 1)
        # discover() moved the balancer to the candidate; the controller
        # must restore the split actually in force
        assert (bal.depth, bal.ratio) == c.split() == (0, 0.0)

    def test_small_windows_are_skipped(self):
        bal = ScriptedBalancer(4, [((2, 0.5), 50.0, 100.0)])
        c = AdaptiveController(
            bal, config=AdaptiveConfig(window_buckets=2,
                                       min_window_queries=64,
                                       confirm_windows=1),
            discover_on_init=False,
        )
        for _ in range(4):
            c.note_bucket(np.arange(8))  # 16 queries/window < 64
        assert c.stats.windows == 2
        assert c.stats.evaluations == 0
        assert c.split() == (0, 0.0)


class TestForcedCpuOnly:
    def test_force_pins_split_to_cpu_only(self):
        bal = ScriptedBalancer(4, [((0, 0.0), 50.0, 100.0)])
        c = AdaptiveController(bal, config=EAGER, discover_on_init=False)
        c.force_cpu_only("degrade")
        assert c.split() == (4, 1.0)
        assert c.cpu_only
        # windows keep closing but never move the pinned split
        feed_windows(c, 3)
        assert c.split() == (4, 1.0)
        assert c.stats.evaluations == 0
        assert c.stats.windows == 3

    def test_rediscover_unpins_and_moves_on(self):
        bal = ScriptedBalancer(4, [((1, 0.5), 50.0, 100.0)])
        c = AdaptiveController(bal, config=EAGER, discover_on_init=False)
        c.force_cpu_only()
        feed_windows(c, 1)  # traffic observed while degraded
        result = c.rediscover()
        assert (result.depth, result.ratio) == (1, 0.5)
        assert c.split() == (1, 0.5)
        assert not c.cpu_only
        # rediscovery profiled the freshest degraded-era window
        assert bal.profiled[-1] is not None

    def test_rebalance_events_and_counters(self):
        obs = Observability()
        events = []
        obs.hooks.subscribe("rebalance", lambda **p: events.append(p))
        bal = ScriptedBalancer(4, [((2, 0.25), 50.0, 100.0)])
        c = AdaptiveController(bal, config=EAGER, obs=obs,
                               discover_on_init=False)
        feed_windows(c, 1)
        assert events and events[-1]["reason"] == "drift"
        assert events[-1]["moved"] is True
        assert events[-1]["depth"] == 2
        snap = obs.metrics.snapshot()
        assert snap["live.rebalance.windows"] == 1
        assert snap["live.rebalance.applied{reason=drift}"] == 1
        assert snap["live.rebalance.depth"] == 2.0


class TestForTree:
    def test_implicit_tree_gets_full_split_space(self, itree):
        c = AdaptiveController.for_tree(itree, bucket_size=512)
        from repro.core.load_balance import LoadBalancer
        assert isinstance(c.balancer, LoadBalancer)
        assert c.balancer.sort_batches  # profiles the engine's stream

    def test_regular_tree_gets_mode_balancer(self, data, m2):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m2)
        c = AdaptiveController.for_tree(tree, bucket_size=512)
        assert isinstance(c.balancer, RegularModeBalancer)
        # the regular tree has no mid-tree resume: endpoints only
        h = tree.cpu_tree.height
        assert c.split() in ((0, 0.0), (h, 1.0))

    def test_regular_mode_balancer_on_weak_gpu_goes_cpu_only(self, data, m2):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m2)
        bal = RegularModeBalancer(tree, bucket_size=512)
        result = bal.discover()
        # M2's GPU loses to the CPU tree (the paper's Fig 18 setting)
        assert (result.depth, result.ratio) == (tree.cpu_tree.height, 1.0)


class TestDeterminism:
    def test_same_trace_same_schedule(self, data, m1):
        keys, values = data
        trace, _phases = synthesize_drift_lookups(
            keys, queries_per_phase=2048, seed=29
        )

        def run():
            tree = ImplicitHBPlusTree(keys, values, machine=m1)
            obs = Observability()
            events = []
            obs.hooks.subscribe(
                "rebalance", lambda **p: events.append(tuple(sorted(
                    (k, v) for k, v in p.items()
                )))
            )
            c = AdaptiveController.for_tree(
                tree, config=EAGER, bucket_size=512, obs=obs
            )
            engine = BatchingEngine(tree, bucket_size=512, balancer=c)
            out = engine.lookup_batch(trace.keys)
            return out, events, c.stats.snapshot()

        out_a, events_a, stats_a = run()
        out_b, events_b, stats_b = run()
        assert np.array_equal(out_a, out_b)
        assert events_a == events_b
        assert stats_a == stats_b


class TestEngineIntegration:
    def test_engines_reject_balancer_without_split_descent(self, data, m1):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        with pytest.raises(ValueError):
            BatchingEngine(tree, balancer=StaticSplit())
        with pytest.raises(ValueError):
            OverlappedEngine(tree, balancer=StaticSplit())

    def test_static_zero_split_matches_unbalanced(self, itree, data):
        keys, _values = data
        queries = keys[::3]
        plain = BatchingEngine(itree, bucket_size=512)
        ref = plain.lookup_batch(queries)
        static = BatchingEngine(itree, bucket_size=512,
                                balancer=StaticSplit(0, 0.0))
        assert np.array_equal(static.lookup_batch(queries), ref)

    def test_adaptive_batching_bit_identical_under_drift(self, itree, data):
        keys, _values = data
        trace, _phases = synthesize_drift_lookups(
            keys, queries_per_phase=2048, seed=29
        )
        plain = BatchingEngine(itree, bucket_size=512)
        ref = plain.lookup_batch(trace.keys)
        c = AdaptiveController.for_tree(itree, config=EAGER,
                                        bucket_size=512)
        engine = BatchingEngine(itree, bucket_size=512, balancer=c)
        out = engine.lookup_batch(trace.keys)
        assert np.array_equal(out, ref)
        assert c.stats.windows > 0

    def test_all_cpu_split_skips_kernel_launches(self, itree, data):
        keys, _values = data
        h = itree.cpu_tree.height
        engine = BatchingEngine(itree, bucket_size=512,
                                balancer=StaticSplit(h, 1.0))
        before = itree.device.kernel_launches
        out = engine.lookup_batch(keys[:2048])
        assert itree.device.kernel_launches == before
        ref = BatchingEngine(itree, bucket_size=512)
        assert np.array_equal(out, ref.lookup_batch(keys[:2048]))

    @given(depth=st.integers(0, 6), ratio=st.sampled_from([0.0, 0.5, 1.0]))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[
                  HealthCheck.too_slow,
                  HealthCheck.function_scoped_fixture,
              ])
    def test_any_static_split_bit_identical(self, itree, data, depth,
                                            ratio):
        keys, _values = data
        queries = keys[1::5]
        h = itree.cpu_tree.height
        plain = BatchingEngine(itree, bucket_size=1024)
        ref = plain.lookup_batch(queries)
        engine = BatchingEngine(
            itree, bucket_size=1024,
            balancer=StaticSplit(min(depth, h), ratio),
        )
        assert np.array_equal(engine.lookup_batch(queries), ref)


@pytest.mark.concurrency
class TestOverlapParity:
    def test_sequential_and_threaded_match_batching(self, itree, data):
        keys, _values = data
        trace, _phases = synthesize_drift_lookups(
            keys, queries_per_phase=2048, seed=29
        )
        ref = BatchingEngine(itree, bucket_size=512).lookup_batch(trace.keys)

        results, stats = [], []
        for strategy, workers in (("sequential", 1), ("double_buffered", 2)):
            c = AdaptiveController.for_tree(itree, config=EAGER,
                                            bucket_size=512)
            engine = OverlappedEngine(
                itree, bucket_size=512, strategy=strategy,
                gpu_workers=workers, cpu_workers=workers, balancer=c,
            )
            results.append(engine.lookup_batch(trace.keys))
            stats.append(c.stats.snapshot())
        assert np.array_equal(results[0], ref)
        assert np.array_equal(results[1], ref)
        # the dispatcher decides splits serially: identical schedules
        assert stats[0] == stats[1]
        assert stats[0]["windows"] > 0


class TestResilienceHandshake:
    def _make(self, data, rate, machine, seed=9, config=None,
              allowed_kernels=None):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=machine)
        # the machine's full bucket size: on M1 it amortizes kernel
        # init, so the mode balancer keeps the GPU loaded when healthy
        adaptive = AdaptiveController.for_tree(
            tree, config=EAGER, allowed_kernels=allowed_kernels
        )
        injector = FaultInjector(FaultPlan.uniform(rate, seed=seed))
        r = ResilientHBPlusTree(tree, injector=injector, config=config,
                                adaptive=adaptive)
        return r, adaptive

    def test_adaptive_must_wrap_the_same_tree(self, data, m1):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        other = HBPlusTree(keys, values, machine=m1)
        adaptive = AdaptiveController.for_tree(other)
        with pytest.raises(ValueError):
            ResilientHBPlusTree(tree, adaptive=adaptive)

    def test_degradation_forces_cpu_only_split(self, data, m1):
        r, adaptive = self._make(data, 1.0, m1)
        keys, values = data
        lut = {int(k): int(v) for k, v in zip(keys, values)}
        rng = np.random.default_rng(5)
        for _ in range(6):
            q = rng.choice(keys, size=512)
            out = r.lookup_batch(q)
            expected = np.asarray([lut[int(k)] for k in q], dtype=out.dtype)
            np.testing.assert_array_equal(out, expected)
        assert r.degraded
        assert adaptive.cpu_only
        assert adaptive.split() == (adaptive.height, 1.0)
        assert adaptive.stats.forced_cpu_only >= 1

    def test_recovery_rediscovers_not_restores(self, data, m1):
        r, adaptive = self._make(
            data, 1.0, m1, config=ResilienceConfig(probe_interval=2)
        )
        keys, values = data
        lut = {int(k): int(v) for k, v in zip(keys, values)}
        rng = np.random.default_rng(5)
        for _ in range(6):
            r.lookup_batch(rng.choice(keys, size=512))
        assert r.degraded and adaptive.cpu_only
        r.tree.injector.disable()
        for _ in range(8):
            q = rng.choice(keys, size=512)
            out = r.lookup_batch(q)
            expected = np.asarray([lut[int(k)] for k in q], dtype=out.dtype)
            np.testing.assert_array_equal(out, expected)
        assert not r.degraded
        assert r.stats.recoveries >= 1
        assert adaptive.stats.rediscoveries >= 1
        # on M1 the re-discovered split serves the GPU again
        assert not adaptive.cpu_only

    def test_adaptive_cpu_only_trips_breaker_economically(self, data, m2):
        """On M2 the per-query kernel loses every level to the CPU, so
        with the kernel space pinned to it the mode balancer picks
        cpu-only at construction; the wrapper must degrade immediately
        without burning GPU retries."""
        r, adaptive = self._make(
            data, 0.0, m2, allowed_kernels=("per_query",)
        )
        assert adaptive.cpu_only
        assert r.degraded
        assert r.stats.economic_degradations >= 1
        keys, values = data
        out = r.lookup_batch(keys[:512])
        np.testing.assert_array_equal(out, values[:512])
        assert r.stats.served_cpu > 0

    def test_frontier_kernel_keeps_m2_gpu_viable(self, data, m2):
        """The level-wise frontier kernel cuts M2's modeled GPU cost
        enough that discovery keeps the hybrid mode — the breaker must
        NOT trip economically, and the committed kernel must reach the
        tree's dispatch default."""
        r, adaptive = self._make(data, 0.0, m2)
        assert adaptive.kernel == "frontier"
        assert not adaptive.cpu_only
        assert not r.degraded
        assert r.tree.kernel == "frontier"
        keys, values = data
        out = r.lookup_batch(keys[:512])
        np.testing.assert_array_equal(out, values[:512])
