"""The observability layer (DESIGN.md §10): tracing, metrics, hooks.

The load-bearing property is at the bottom: attaching a live
:class:`~repro.obs.Observability` bundle never changes an engine's
results or its modeled device counters (bit-identity), because the
layer only *observes* wall time — nothing in the simulation reads it.
"""

import json
import threading
from functools import lru_cache

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batching import BatchingEngine
from repro.core.hbtree import HBPlusTree
from repro.core.overlap import OverlappedEngine
from repro.obs import (
    NULL_OBS,
    NULL_REGISTRY,
    NULL_SPAN,
    NULL_TRACER,
    HookSet,
    MetricsRegistry,
    Observability,
    Tracer,
    validate_events,
    validate_trace_file,
)
from repro.obs.export import collect_all, publish_engine, stats_dict
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset


def make_clock(step=1000):
    """A deterministic injectable tracer clock (monotone ns)."""
    state = {"t": 0}

    def clock():
        state["t"] += step
        return state["t"]

    return clock


def device_counters(tree):
    c = tree.device.memory.counters
    return (
        int(tree.device.kernel_launches),
        int(c.transactions_64),
        int(c.bytes_moved),
    )


@lru_cache(maxsize=None)
def shared_tree():
    keys, values = generate_dataset(700, seed=42)
    return HBPlusTree(keys, values, machine=machine_m1()), keys


def traced_vs_untraced(tree, make_engine, queries):
    """Run untraced (explicit NULL_OBS) then traced; return both sides."""
    tree.device.reset_counters()
    ref = make_engine(tree, NULL_OBS).lookup_batch(queries)
    ref_counters = device_counters(tree)

    obs = Observability()
    tree.attach_obs(obs)
    try:
        tree.device.reset_counters()
        out = make_engine(tree, None).lookup_batch(queries)
        counters = device_counters(tree)
    finally:
        tree.attach_obs(NULL_OBS)
    return ref, ref_counters, out, counters, obs


# ---------------------------------------------------------------------------
# Tracer


class TestTracer:
    def test_span_nesting_and_balanced_events(self):
        t = Tracer(clock=make_clock())
        with t.span("outer", bucket=0):
            assert t.depth() == 1
            with t.span("inner"):
                assert t.depth() == 2
        assert t.depth() == 0
        events = t.events
        phases = [e["ph"] for e in events]
        assert phases == ["M", "B", "B", "E", "E"]  # thread_name first
        names = [e["name"] for e in events if e["ph"] in "BE"]
        assert names == ["outer", "inner", "inner", "outer"]
        assert t.span_count() == 2
        assert validate_events(events) == []

    def test_span_args_recorded(self):
        t = Tracer(clock=make_clock())
        with t.span("work", category="gpu", bucket=3, n=7):
            pass
        begin = next(e for e in t.events if e["ph"] == "B")
        assert begin["cat"] == "gpu"
        assert begin["args"] == {"bucket": 3, "n": 7}

    def test_timestamps_are_relative_microseconds(self):
        t = Tracer(clock=make_clock(step=1000))  # 1 us per tick
        with t.span("a"):
            pass
        b, e = [ev for ev in t.events if ev["ph"] in "BE"]
        assert e["ts"] > b["ts"] >= 0
        assert e["ts"] - b["ts"] == pytest.approx(1.0)  # one tick, in us

    def test_out_of_order_close_raises(self):
        t = Tracer(clock=make_clock())
        outer = t.span("outer")
        inner = t.span("inner")
        outer.__enter__()
        inner.__enter__()
        with pytest.raises(RuntimeError, match="out of order"):
            outer.__exit__(None, None, None)

    def test_disabled_tracer_is_pure_noop(self):
        t = Tracer(enabled=False)
        assert t.span("x") is NULL_SPAN
        with t.span("x"):
            pass
        t.instant("marker")
        t.counter("depth", 3)
        assert t.events == []
        assert t.span_count() == 0
        assert NULL_TRACER.span("anything") is NULL_SPAN

    def test_spans_across_threads_get_distinct_tracks(self):
        t = Tracer()
        barrier = threading.Barrier(2)

        def work():
            barrier.wait()
            with t.span("outer"):
                with t.span("inner"):
                    pass

        threads = [
            threading.Thread(target=work, name=f"obs-worker-{i}")
            for i in range(2)
        ]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert validate_events(t.events) == []
        names = set(t.thread_names().values())
        assert {"obs-worker-0", "obs-worker-1"} <= names
        tids = {e["tid"] for e in t.events if e["ph"] == "B"}
        assert len(tids) == 2
        assert t.span_count() == 4

    def test_instant_and_counter_events_validate(self):
        t = Tracer(clock=make_clock())
        t.instant("fault", total=1)
        t.counter("queue_depth", 2)
        events = t.events
        assert [e["ph"] for e in events] == ["M", "i", "C"]
        assert events[2]["args"] == {"value": 2}
        assert validate_events(events) == []

    def test_export_and_write_roundtrip(self, tmp_path):
        t = Tracer(clock=make_clock())
        with t.span("a"):
            t.instant("mid")
        payload = t.export()
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == len(t.events)
        path = tmp_path / "trace.json"
        t.write(path)
        assert validate_trace_file(str(path)) == []
        with open(path) as fh:
            assert json.load(fh) == payload

    def test_reset_drops_events(self):
        t = Tracer(clock=make_clock())
        with t.span("a"):
            pass
        assert t.span_count() == 1
        t.reset()
        assert t.events == []
        assert t.thread_names() == {}

    def test_events_are_detached_copies(self):
        t = Tracer(clock=make_clock())
        with t.span("a"):
            pass
        snap = t.events
        snap[0]["ph"] = "corrupted"
        assert t.events[0]["ph"] == "M"


class TestValidate:
    PID_TID = {"pid": 1, "tid": 1}

    def test_orphan_end_detected(self):
        events = [{"ph": "E", "name": "x", "ts": 1.0, **self.PID_TID}]
        errors = validate_events(events)
        assert len(errors) == 1 and "orphan E" in errors[0]

    def test_unclosed_begin_detected(self):
        events = [{"ph": "B", "name": "x", "ts": 1.0, **self.PID_TID}]
        errors = validate_events(events)
        assert len(errors) == 1 and "unclosed span" in errors[0]

    def test_mismatched_close_detected(self):
        events = [
            {"ph": "B", "name": "a", "ts": 1.0, **self.PID_TID},
            {"ph": "E", "name": "b", "ts": 2.0, **self.PID_TID},
        ]
        assert any("mismatched" in e for e in validate_events(events))

    def test_end_before_begin_detected(self):
        events = [
            {"ph": "B", "name": "a", "ts": 5.0, **self.PID_TID},
            {"ph": "E", "name": "a", "ts": 1.0, **self.PID_TID},
        ]
        assert any("before" in e for e in validate_events(events))

    def test_unknown_phase_and_bad_ts(self):
        assert any(
            "unknown phase" in e
            for e in validate_events([{"ph": "Z"}])
        )
        assert any(
            "bad ts" in e
            for e in validate_events(
                [{"ph": "B", "name": "a", "ts": -1, **self.PID_TID}]
            )
        )

    def test_tracks_nest_independently(self):
        # interleaved spans on different tids are fine (LIFO per track)
        events = [
            {"ph": "B", "name": "a", "ts": 1.0, "pid": 1, "tid": 1},
            {"ph": "B", "name": "b", "ts": 2.0, "pid": 1, "tid": 2},
            {"ph": "E", "name": "a", "ts": 3.0, "pid": 1, "tid": 1},
            {"ph": "E", "name": "b", "ts": 4.0, "pid": 1, "tid": 2},
        ]
        assert validate_events(events) == []


# ---------------------------------------------------------------------------
# Metrics


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", engine="overlap")
        b = reg.counter("hits", engine="overlap")
        assert a is b
        assert len(reg) == 1

    def test_label_cardinality_creates_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", engine="overlap").inc()
        reg.counter("hits", engine="batch").inc(2)
        reg.counter("hits").inc(3)
        assert len(reg) == 3
        snap = reg.snapshot()
        assert snap["hits"] == 3
        assert snap["hits{engine=batch}"] == 2
        assert snap["hits{engine=overlap}"] == 1

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("g", x=1, y=2)
        b = reg.gauge("g", y=2, x=1)
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("n")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("n")

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("temp")
        g.set(5.0)
        g.add(-2.0)
        assert reg.snapshot()["temp"] == 3.0

    def test_histogram_streaming_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        exported = reg.snapshot()["lat"]
        assert exported == {
            "count": 3, "sum": 12.0, "mean": 4.0, "min": 1.0, "max": 7.0,
        }

    def test_snapshot_is_detached_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        reg.counter("a").inc(100)
        assert snap["a"] == 1

    def test_reset_zeros_in_place(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        h = reg.histogram("lat")
        c.inc(5)
        h.observe(3.0)
        reg.reset()
        assert c is reg.counter("n")  # registration survives
        assert c.value == 0
        assert h.count == 0 and h.min is None
        assert reg.snapshot()["n"] == 0

    def test_disabled_registry_hands_out_shared_noop(self):
        a = NULL_REGISTRY.counter("x")
        b = NULL_REGISTRY.histogram("y", k=1)
        assert a is b
        a.inc()
        b.observe(1.0)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == {}


# ---------------------------------------------------------------------------
# Hooks


class TestHookSet:
    def test_subscribe_emit_payload(self):
        hooks = HookSet()
        seen = []
        hooks.subscribe("bucket_end", lambda **p: seen.append(p))
        hooks.emit("bucket_end", index=3, transactions=9)
        assert seen == [{"index": 3, "transactions": 9}]

    def test_handlers_run_in_subscription_order(self):
        hooks = HookSet()
        order = []
        hooks.subscribe("e", lambda **p: order.append("first"))
        hooks.subscribe("e", lambda **p: order.append("second"))
        hooks.emit("e")
        assert order == ["first", "second"]

    def test_unsubscribe_stops_delivery(self):
        hooks = HookSet()
        seen = []
        unsub = hooks.subscribe("e", lambda **p: seen.append(p))
        hooks.emit("e", n=1)
        unsub()
        hooks.emit("e", n=2)
        assert seen == [{"n": 1}]
        unsub()  # idempotent

    def test_on_decorator(self):
        hooks = HookSet()
        seen = []

        @hooks.on("fault")
        def handler(**payload):
            seen.append(payload)

        hooks.emit("fault", total=1)
        assert seen == [{"total": 1}]

    def test_emit_without_subscribers_is_noop(self):
        HookSet().emit("nobody", x=1)

    def test_frozen_hookset_rejects_subscription(self):
        frozen = HookSet(frozen=True)
        with pytest.raises(RuntimeError, match="frozen"):
            frozen.subscribe("e", lambda **p: None)
        frozen.clear()  # allowed, still empty
        assert not frozen.has("e")


# ---------------------------------------------------------------------------
# Bundle + export


class TestObservabilityBundle:
    def test_null_obs_is_fully_disabled(self):
        assert not NULL_OBS.enabled
        assert NULL_OBS.span("x") is NULL_SPAN
        NULL_OBS.count("n")
        NULL_OBS.gauge("g", 1.0)
        NULL_OBS.observe("h", 1.0)
        NULL_OBS.emit("e", x=1)
        assert len(NULL_OBS.metrics) == 0
        assert NULL_OBS.tracer.events == []
        with pytest.raises(RuntimeError):
            NULL_OBS.hooks.subscribe("e", lambda **p: None)

    def test_enabled_bundle_records_everything(self):
        obs = Observability()
        seen = []
        obs.hooks.subscribe("e", lambda **p: seen.append(p))
        with obs.span("s"):
            obs.count("n", 2, engine="x")
            obs.observe("lat", 5.0)
            obs.emit("e", ok=True)
        snap = obs.metrics.snapshot()
        assert snap["n{engine=x}"] == 2
        assert snap["lat"]["count"] == 1
        assert seen == [{"ok": True}]
        assert obs.tracer.span_count() == 1

    def test_reset_clears_state_keeps_subscriptions(self):
        obs = Observability()
        seen = []
        obs.hooks.subscribe("e", lambda **p: seen.append(p))
        with obs.span("s"):
            obs.count("n")
        obs.reset()
        assert obs.tracer.events == []
        assert obs.metrics.snapshot()["n"] == 0
        obs.emit("e")
        assert seen == [{}]


class TestExport:
    def test_stats_dict_paths(self):
        import dataclasses

        @dataclasses.dataclass
        class Plain:
            hits: int = 3

        class Snapshottable:
            def snapshot(self):
                return {"x": 1}

        assert stats_dict(Plain()) == {"hits": 3}
        assert stats_dict(Snapshottable()) == {"x": 1}
        with pytest.raises(TypeError):
            stats_dict(object())

    def test_collect_all_unifies_tree_and_engine(self):
        tree, keys = shared_tree()
        reg = MetricsRegistry()
        engine = BatchingEngine(tree, bucket_size=128, obs=NULL_OBS)
        engine.lookup_batch(keys[:256])
        snap = collect_all(reg, tree=tree, engine=engine,
                           engine_label="batch")
        assert snap["gpu.kernel_launches"] > 0
        assert snap["engine.buckets{engine=batch}"] == 2
        assert any(k.startswith("pcie.") for k in snap)
        assert any(k.startswith("mem.") for k in snap)

    def test_publish_engine_label_dimension(self):
        tree, keys = shared_tree()
        reg = MetricsRegistry()
        a = BatchingEngine(tree, bucket_size=64, obs=NULL_OBS)
        b = BatchingEngine(tree, bucket_size=128, obs=NULL_OBS)
        a.lookup_batch(keys[:64])
        b.lookup_batch(keys[:128])
        publish_engine(reg, a, "small")
        publish_engine(reg, b, "large")
        snap = reg.snapshot()
        assert snap["engine.buckets{engine=small}"] == 1
        assert snap["engine.buckets{engine=large}"] == 1


# ---------------------------------------------------------------------------
# Engine integration: the bit-identity guarantee


class TestBatchingEngineTracing:
    def test_traced_run_bit_identical_with_spans(self):
        tree, keys = shared_tree()
        rng = np.random.default_rng(7)
        queries = rng.choice(keys, size=500, replace=True)
        ref, ref_counters, out, counters, obs = traced_vs_untraced(
            tree,
            lambda t, o: BatchingEngine(t, bucket_size=128, obs=o),
            queries,
        )
        np.testing.assert_array_equal(out, ref)
        assert counters == ref_counters
        assert obs.tracer.span_count() > 0
        assert validate_events(obs.tracer.events) == []
        span_names = {
            e["name"] for e in obs.tracer.events if e["ph"] == "B"
        }
        assert {"bucket", "gpu_descend", "cpu_finish"} <= span_names
        # the tree-level instrumentation recorded live counters too
        assert obs.metrics.snapshot()["live.gpu.kernel_launches"] > 0

    def test_bucket_hooks_fire_per_bucket(self):
        tree, keys = shared_tree()
        obs = Observability()
        starts, ends = [], []
        obs.hooks.subscribe("bucket_start", lambda **p: starts.append(p))
        obs.hooks.subscribe("bucket_end", lambda **p: ends.append(p))
        tree.attach_obs(obs)
        try:
            engine = BatchingEngine(tree, bucket_size=128)
            engine.lookup_batch(keys[:300])
        finally:
            tree.attach_obs(NULL_OBS)
        assert len(starts) == len(ends) == engine.stats.buckets == 3
        assert [p["index"] for p in starts] == [0, 1, 2]
        assert all("transactions" in p for p in ends)

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        idx=st.lists(st.integers(0, 699), max_size=200),
        miss=st.lists(st.integers(0, 2**40), max_size=20),
        bucket=st.sampled_from([32, 64, 128]),
    )
    def test_property_tracing_never_changes_results(self, idx, miss, bucket):
        tree, keys = shared_tree()
        queries = np.concatenate([
            keys[np.asarray(idx, dtype=np.int64)],
            np.asarray(miss, dtype=np.uint64),
        ])
        ref, ref_counters, out, counters, obs = traced_vs_untraced(
            tree,
            lambda t, o: BatchingEngine(t, bucket_size=bucket, obs=o),
            queries,
        )
        np.testing.assert_array_equal(out, ref)
        assert counters == ref_counters
        assert validate_events(obs.tracer.events) == []


@pytest.mark.concurrency
class TestOverlappedEngineTracing:
    def test_threaded_spans_on_distinct_tracks(self):
        keys, values = generate_dataset(900, seed=31)
        tree = HBPlusTree(keys, values, machine=machine_m1())
        queries = np.tile(keys[:128], 12)

        def make_engine(t, o):
            return OverlappedEngine(
                t, bucket_size=128, strategy="double_buffered",
                gpu_workers=2, cpu_workers=2, cpu_chunk_min=16, obs=o,
            )

        ref, ref_counters, out, counters, obs = traced_vs_untraced(
            tree, make_engine, queries
        )
        np.testing.assert_array_equal(out, ref)
        assert counters == ref_counters
        assert validate_events(obs.tracer.events) == []
        names = set(obs.tracer.thread_names().values())
        # GPU workers, CPU pool and the dispatcher (caller thread) each
        # announce their own track
        assert {"overlap-gpu-0", "overlap-gpu-1",
                "overlap-cpu-0", "overlap-cpu-1"} <= names
        assert len(names) >= 5
        span_names = {
            e["name"] for e in obs.tracer.events if e["ph"] == "B"
        }
        assert {"overlap.lookup_batch", "plan_screen", "gpu_descend",
                "cpu_finish_chunk"} <= span_names

    def test_bucket_end_hooks_thread_safe_completion_order(self):
        keys, values = generate_dataset(900, seed=33)
        tree = HBPlusTree(keys, values, machine=machine_m1())
        queries = np.tile(keys[:128], 8)
        obs = Observability()
        lock = threading.Lock()
        ends = []

        def on_end(**payload):
            with lock:
                ends.append(payload["index"])

        obs.hooks.subscribe("bucket_end", on_end)
        tree.attach_obs(obs)
        try:
            engine = OverlappedEngine(
                tree, bucket_size=128, strategy="double_buffered",
                gpu_workers=2, cpu_workers=2, cpu_chunk_min=16,
            )
            engine.lookup_batch(queries)
        finally:
            tree.attach_obs(NULL_OBS)
        # completion order may differ from dispatch order, but every
        # bucket lands exactly once
        assert sorted(ends) == list(range(8))
