"""GPU search kernels: literal SIMT execution vs vectorised twins.

The central equivalence property: for identical inputs, the Snippet-3
interpreter run and the numpy twin must produce identical leaf indexes,
and the twin's transaction accounting must match the interpreter's
tree-line transactions.
"""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.gpusim.kernels.implicit_search import (
    implicit_search_from,
    implicit_search_vectorized,
)
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def hb_implicit(m1_module):
    keys, values = generate_dataset(3000, seed=3)
    return ImplicitHBPlusTree(keys, values, machine=m1_module), keys, values


@pytest.fixture(scope="module")
def m1_module():
    from repro.platform.configs import machine_m1
    return machine_m1()


class TestImplicitKernel:
    def test_literal_equals_vectorized(self, hb_implicit):
        tree, keys, _values = hb_implicit
        sample = keys[:96]
        literal = tree.gpu_search_bucket_literal(sample)
        vector = tree.gpu_search_bucket(sample).leaf_indices
        assert np.array_equal(literal, vector)

    def test_leaf_indices_match_cpu_descend(self, hb_implicit):
        tree, keys, _values = hb_implicit
        sample = keys[:64]
        gpu_leaf = tree.gpu_search_bucket(sample).leaf_indices
        cpu_leaf = [tree.cpu_tree._descend(int(k), instrument=False)
                    for k in sample]
        assert gpu_leaf.tolist() == cpu_leaf

    def test_overflow_probe_stays_in_bounds(self, hb_implicit):
        tree, keys, _values = hb_implicit
        probe = np.asarray([int(keys.max()) + 5, 0], dtype=np.uint64)
        leaf = tree.gpu_search_bucket(probe).leaf_indices
        assert np.all(leaf < tree.cpu_tree.num_leaves)
        literal = tree.gpu_search_bucket_literal(probe)
        assert np.array_equal(literal, leaf)

    def test_transactions_at_most_depth_per_query(self, hb_implicit):
        tree, keys, _values = hb_implicit
        sample = keys[:256]
        result = tree.gpu_search_bucket(sample)
        assert result.transactions <= len(sample) * tree.gpu_depth
        assert result.transactions > 0

    def test_root_line_shared_within_warp(self, hb_implicit):
        """All teams read the same root node: one transaction per warp
        at level 0, not one per query."""
        tree, keys, _values = hb_implicit
        sample = keys[:64]
        result = tree.gpu_search_bucket(sample)
        # strictly fewer than depth * queries thanks to warp sharing
        assert result.transactions < len(sample) * tree.gpu_depth

    def test_literal_kernel_stats(self, hb_implicit):
        tree, keys, _values = hb_implicit
        from repro.gpusim.kernels.implicit_search import launch_implicit_search
        sample = np.asarray(keys[:32], dtype=np.uint64)
        _out, stats = launch_implicit_search(
            tree.device, tree.iseg_buffer, tree.level_offsets,
            tree.gpu_depth, tree.cpu_tree.fanout, sample,
        )
        assert stats.barriers >= 2 * tree.gpu_depth
        assert stats.shared_accesses > 0
        assert stats.threads >= 32 * 8


class TestImplicitSearchFrom:
    def test_resume_from_zero_equals_full(self, hb_implicit):
        tree, keys, _values = hb_implicit
        q = np.asarray(keys[:128], dtype=np.uint64)
        full, _txn = implicit_search_vectorized(
            tree.iseg_buffer.array, tree.level_offsets, tree.level_sizes,
            tree.gpu_depth, tree.cpu_tree.fanout, q,
        )
        resumed = implicit_search_from(
            tree.iseg_buffer.array, tree.level_offsets, tree.level_sizes,
            tree.gpu_depth, tree.cpu_tree.fanout, q,
            start_levels=np.zeros(len(q), dtype=np.int64),
            start_nodes=np.zeros(len(q), dtype=np.int64),
        )
        assert np.array_equal(full, resumed)

    def test_resume_mid_tree(self, hb_implicit):
        """CPU descends D levels, GPU resumes: same final leaf."""
        tree, keys, _values = hb_implicit
        ctree = tree.cpu_tree
        q = np.asarray(keys[:64], dtype=np.uint64)
        d = min(2, ctree.height)
        node = np.zeros(len(q), dtype=np.int64)
        for level in range(d):
            lk = ctree.inner_levels[level][node]
            k = np.sum(lk < q[:, None], axis=1).astype(np.int64)
            node = node * ctree.fanout + k
        resumed = implicit_search_from(
            tree.iseg_buffer.array, tree.level_offsets, tree.level_sizes,
            tree.gpu_depth, ctree.fanout, q,
            start_levels=np.full(len(q), d, dtype=np.int64),
            start_nodes=node,
        )
        full = tree.gpu_search_bucket(q).leaf_indices
        assert np.array_equal(resumed, full)


class TestRegularKernel:
    @pytest.fixture(scope="class")
    def hb_regular(self, m1_module):
        keys, values = generate_dataset(3000, seed=5)
        return HBPlusTree(keys, values, machine=m1_module), keys, values

    def test_literal_equals_vectorized(self, hb_regular):
        tree, keys, _values = hb_regular
        sample = keys[:96]
        literal = tree.gpu_search_bucket_literal(sample)
        vector = tree.gpu_search_bucket(sample).codes
        assert np.array_equal(literal, vector)

    def test_codes_address_correct_leaf_lines(self, hb_regular):
        tree, keys, values = hb_regular
        sample = keys[:128]
        codes = tree.gpu_search_bucket(sample).codes
        out = tree.cpu_finish_bucket(sample, codes)
        expect = values[:128]
        assert np.array_equal(out, expect)

    def test_three_transactions_per_upper_level(self, hb_regular):
        tree, keys, _values = hb_regular
        # one query -> no warp sharing beyond itself: exactly
        # 3 txns per upper level + 2 for the last level
        one = np.asarray(keys[:1], dtype=np.uint64)
        result = tree.gpu_search_bucket(one)
        h = tree.cpu_tree.height
        assert result.transactions == 3 * (h - 1) + 2

    def test_overflow_probe(self, hb_regular):
        tree, keys, _values = hb_regular
        probe = np.asarray([int(keys.max()) + 77], dtype=np.uint64)
        codes = tree.gpu_search_bucket(probe).codes
        literal = tree.gpu_search_bucket_literal(probe)
        assert np.array_equal(codes, literal)
        assert tree.cpu_finish_bucket(probe, codes)[0] == tree.spec.max_value


class Test32BitKernels:
    def test_implicit_32bit(self, m1_module):
        keys, values = generate_dataset(2000, key_bits=32, seed=9)
        tree = ImplicitHBPlusTree(keys, values, machine=m1_module,
                                  key_bits=32)
        sample = keys[:64]
        literal = tree.gpu_search_bucket_literal(sample)
        vector = tree.gpu_search_bucket(sample).leaf_indices
        assert np.array_equal(literal, vector)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_regular_32bit(self, m1_module):
        keys, values = generate_dataset(2000, key_bits=32, seed=10)
        tree = HBPlusTree(keys, values, machine=m1_module, key_bits=32)
        assert np.array_equal(tree.lookup_batch(keys), values)
