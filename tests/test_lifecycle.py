"""Crash-consistent lifecycle: snapshot, restore ladder, warm restart."""

import threading
import zlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveController
from repro.core.batching import BatchingEngine
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.overlap import OverlappedEngine
from repro.core.resilience import ResilientHBPlusTree
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.cpu.fast_tree import FastTree
from repro.faults import FaultInjector, FaultPlan, PartialRead, TornWrite
from repro.lifecycle import (
    SUFFIX,
    RestoreError,
    SnapshotCorrupt,
    SnapshotManager,
    bulk_load,
    capture_payload,
    cold_build_per_key,
    parse_payload,
    peek_version,
    read_envelope,
    warm_restart,
    write_envelope,
)
from repro.lifecycle.format import HEADER_SIZE, MAGIC
from repro.memsim.mainmem import MemorySystem
from repro.obs import Observability
from repro.obs.export import collect_all, stats_dict
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(3000, seed=77)


@pytest.fixture()
def tree(data, m1):
    keys, values = data
    return HBPlusTree(keys, values, machine=m1)


def _probe(keys, size=512):
    rng = np.random.default_rng(5)
    hits = rng.choice(keys, size=size // 2, replace=False)
    return np.concatenate([hits, hits + np.uint64(1)])


class TestEnvelope:
    def test_round_trip(self, tmp_path):
        payload = b"x" * 1000
        path = write_envelope(tmp_path / f"a{SUFFIX}", payload)
        assert read_envelope(path) == payload
        assert peek_version(path) == 1

    def test_no_tmp_left_behind(self, tmp_path):
        write_envelope(tmp_path / f"a{SUFFIX}", b"abc")
        assert list(tmp_path.glob("*.tmp")) == []

    def test_truncated_rejected(self, tmp_path):
        path = write_envelope(tmp_path / f"a{SUFFIX}", b"y" * 500)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])
        with pytest.raises(SnapshotCorrupt, match="truncated"):
            read_envelope(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / f"a{SUFFIX}"
        path.write_bytes(b"NOTSNAP!" + b"\x00" * 64)
        with pytest.raises(SnapshotCorrupt, match="magic"):
            read_envelope(path)
        assert peek_version(path) is None

    def test_flipped_payload_bit_rejected(self, tmp_path):
        path = write_envelope(tmp_path / f"a{SUFFIX}", b"z" * 256)
        blob = bytearray(path.read_bytes())
        blob[HEADER_SIZE + 100] ^= 0x10
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorrupt, match="CRC"):
            read_envelope(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = write_envelope(tmp_path / f"a{SUFFIX}", b"w" * 64)
        blob = bytearray(path.read_bytes())
        blob[len(MAGIC)] = 99  # little-endian version low byte
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorrupt, match="version"):
            read_envelope(path)

    def test_torn_write_spares_target(self, tmp_path):
        target = tmp_path / f"a{SUFFIX}"
        write_envelope(target, b"intact" * 100)
        before = target.read_bytes()
        inj = FaultInjector(FaultPlan(seed=3, torn_write=1.0))
        with pytest.raises(TornWrite):
            write_envelope(target, b"replacement" * 100, injector=inj)
        # target untouched; the torn temp file is the only debris
        assert target.read_bytes() == before
        (tmp,) = tmp_path.glob("*.tmp")
        assert tmp.stat().st_size < len(b"replacement" * 100) + HEADER_SIZE

    def test_partial_read_rejected_as_corrupt(self, tmp_path):
        path = write_envelope(tmp_path / f"a{SUFFIX}", b"p" * 4096)
        inj = FaultInjector(FaultPlan(seed=3, partial_read=1.0))
        with pytest.raises(SnapshotCorrupt):
            read_envelope(path, injector=inj)
        assert inj.stats.partial_reads == 1
        # the file itself is fine: a clean reader succeeds
        assert read_envelope(path) == b"p" * 4096


class TestPayload:
    def test_capture_parse_round_trip(self, tree, data):
        keys, values = data
        payload = capture_payload(tree, split=(1, 0.25), epoch=7)
        contents = parse_payload(payload)
        assert contents.kind == "hb-regular"
        assert contents.key_bits == 64
        assert contents.epoch == 7
        assert contents.split == (1, 0.25)
        assert contents.mirror_crc is not None
        assert contents.mirror_meta["node_stride"] == tree.node_stride
        assert contents.mirror_meta["last_base"] == tree.last_base
        assert np.array_equal(contents.keys, np.sort(keys))

    def test_capture_reads_only(self, tree):
        """Capturing consults no GPU site: lookups before and after a
        snapshot are bit-identical under any fault plan."""
        inj = FaultInjector(FaultPlan.uniform(0.5, seed=21))
        tree.attach_injector(inj)
        schedule_before = inj.schedule()
        capture_payload(tree, split=(0, 0.0))
        assert inj.schedule() == schedule_before
        assert inj.stats.total_faults == 0


class TestManager:
    def test_save_restore_round_trip(self, tree, data, m1, tmp_path):
        keys, _values = data
        manager = SnapshotManager(tmp_path)
        path = manager.save(tree, split=(0, 0.0))
        assert path is not None and path.suffix == SUFFIX
        result = manager.restore_latest(machine=m1)
        assert result.source == "snapshot"
        assert result.skipped == 0
        assert result.split == (0, 0.0)
        assert result.mirror_verified  # pristine tree: byte-exact image
        probe = _probe(keys)
        assert np.array_equal(
            result.tree.lookup_batch(probe), tree.lookup_batch(probe)
        )

    def test_sequence_and_prune(self, tree, tmp_path):
        manager = SnapshotManager(tmp_path, keep=2)
        for _ in range(4):
            manager.save(tree)
        names = [p.name for p in manager.snapshots()]
        assert names == [f"snap-0000000{i}{SUFFIX}" for i in (3, 4)]
        assert manager.stats.pruned == 2

    def test_ladder_falls_back_to_intact(self, tree, data, m1, tmp_path):
        keys, _values = data
        manager = SnapshotManager(tmp_path)
        intact = manager.save(tree, split=(0, 0.0))
        newest = manager.save(tree, split=(0, 0.0))
        blob = bytearray(newest.read_bytes())
        blob[-1] ^= 0xFF
        newest.write_bytes(bytes(blob))
        result = manager.restore_latest(machine=m1)
        assert result.path == intact
        assert result.skipped == 1
        assert manager.stats.restore_fallbacks == 1
        assert manager.stats.corrupt_snapshots == 1
        probe = _probe(keys)
        assert np.array_equal(
            result.tree.lookup_batch(probe), tree.lookup_batch(probe)
        )

    def test_empty_directory_raises(self, tmp_path, m1):
        with pytest.raises(RestoreError):
            SnapshotManager(tmp_path).restore_latest(machine=m1)

    def test_cold_source_is_last_rung(self, tree, data, m1, tmp_path):
        keys, values = data
        inj = FaultInjector(FaultPlan(seed=5, storage_bitflip=1.0))
        manager = SnapshotManager(tmp_path, injector=inj)
        assert manager.save(tree) is not None  # silently corrupt
        result = manager.restore_latest(
            machine=m1,
            cold_source=lambda: HBPlusTree(keys, values, machine=m1),
        )
        assert result.source == "cold"
        assert result.split is None
        assert result.skipped == 1
        assert manager.stats.cold_builds == 1

    def test_torn_write_contained(self, tree, data, tmp_path):
        """A torn write costs the snapshot — never the live tree or
        the directory's existing snapshots."""
        keys, _values = data
        clean = SnapshotManager(tmp_path)
        clean.save(tree, split=(0, 0.0))
        before = [p.name for p in clean.snapshots()]
        probe = _probe(keys)
        expected = tree.lookup_batch(probe)
        torn = SnapshotManager(
            tmp_path,
            injector=FaultInjector(FaultPlan(seed=9, torn_write=1.0)),
        )
        assert torn.save(tree) is None
        assert torn.stats.snapshot_failures == 1
        assert [p.name for p in torn.snapshots()] == before
        assert np.array_equal(tree.lookup_batch(probe), expected)

    def test_deterministic_fault_replay(self, tree, m1, tmp_path):
        """The same storage plan against the same op sequence yields an
        identical fault schedule and identical ladder outcomes."""
        outcomes = []
        for run in range(2):
            inj = FaultInjector(FaultPlan.storage(0.6, seed=41))
            manager = SnapshotManager(tmp_path / f"run{run}", injector=inj)
            with inj.paused():
                manager.save(tree, split=(0, 0.0))
            for _ in range(3):
                manager.save(tree, split=(0, 0.0))
            result = manager.restore_latest(machine=m1)
            outcomes.append(
                (inj.schedule(), result.skipped,
                 result.path.name, manager.stats.snapshot())
            )
        assert outcomes[0] == outcomes[1]
        assert len(outcomes[0][0]) > 0

    def test_obs_wiring(self, tree, m1, tmp_path):
        obs = Observability()
        inj = FaultInjector(FaultPlan(seed=5, storage_bitflip=1.0))
        manager = SnapshotManager(tmp_path, injector=inj, obs=obs)
        events = []
        obs.hooks.subscribe(
            "snapshot", lambda **kw: events.append(("snap", kw))
        )
        obs.hooks.subscribe(
            "snapshot_rejected",
            lambda **kw: events.append(("rejected", kw)),
        )
        with inj.paused():
            manager.save(tree)  # intact, oldest
        manager.save(tree)  # newest, silently corrupt
        manager.restore_latest(machine=m1)
        names = [e[0] for e in events]
        assert names.count("snap") == 2
        assert "rejected" in names
        snap = collect_all(obs.metrics, lifecycle=manager)
        assert snap["live.lifecycle.snapshots"] == 2
        assert snap["live.lifecycle.corrupt_snapshots"] == 1
        assert snap["lifecycle.restores"] == 1
        assert snap["lifecycle.on_disk"] == 2

    def test_mutated_tree_restores_with_layout_drift(self, data, m1,
                                                     tmp_path):
        """An insert-grown tree canonicalises to a different node
        layout on rebuild; that is drift, not corruption — the restore
        succeeds with identical answers and the drift is counted."""
        keys, values = data
        grown = HBPlusTree(keys, values, machine=m1, fill=0.7)
        for k in range(10_000_000, 10_000_200):
            grown.cpu_tree.insert(k, 1)
        grown.mirror_i_segment()
        manager = SnapshotManager(tmp_path)
        manager.save(grown, split=(0, 0.0))
        result = manager.restore_latest(machine=m1)
        assert result.source == "snapshot"
        assert not result.mirror_verified
        assert manager.stats.mirror_drift == 1
        probe = np.concatenate([
            _probe(keys),
            np.arange(10_000_000, 10_000_200, dtype=np.uint64),
        ])
        assert np.array_equal(
            result.tree.lookup_batch(probe), grown.lookup_batch(probe)
        )

    def test_hb_implicit_round_trip(self, data, m1, tmp_path):
        keys, values = data
        original = ImplicitHBPlusTree(keys, values, machine=m1)
        manager = SnapshotManager(tmp_path)
        manager.save(original, split=(2, 0.5))
        result = manager.restore_latest(machine=m1)
        assert isinstance(result.tree, ImplicitHBPlusTree)
        assert result.split == (2, 0.5)
        probe = _probe(keys)
        assert np.array_equal(
            result.tree.lookup_batch(probe), original.lookup_batch(probe)
        )


class TestWarmRestart:
    def test_pinned_split_without_reprofile(self, tree, m1, tmp_path):
        manager = SnapshotManager(tmp_path)
        committed = (tree.height, 1.0)  # cpu-only mode, clearly non-default
        manager.save(tree, split=committed)
        warm = warm_restart(manager, machine=m1)
        assert warm.controller is not None
        assert warm.controller.split() == committed
        assert warm.controller.cpu_only
        # no init-time profiling window: the balancer carries no profile
        assert not hasattr(warm.controller.balancer, "cpu_level_ns")
        assert warm.restore.source == "snapshot"

    def test_warm_controller_serves_and_adapts(self, tree, data, m1,
                                               tmp_path):
        keys, _values = data
        manager = SnapshotManager(tmp_path)
        manager.save(tree, split=(0, 0.0))
        warm = warm_restart(manager, machine=m1)
        resilient = ResilientHBPlusTree(warm.tree,
                                        adaptive=warm.controller)
        probe = _probe(keys)
        assert np.array_equal(
            resilient.lookup_batch(probe), tree.lookup_batch(probe)
        )

    def test_cold_restore_has_no_controller(self, data, m1, tmp_path):
        keys, values = data
        warm = warm_restart(
            SnapshotManager(tmp_path), machine=m1,
            cold_source=lambda: HBPlusTree(keys, values, machine=m1),
        )
        assert warm.controller is None
        assert warm.restore.source == "cold"

    def test_splitless_snapshot_has_no_controller(self, tree, m1,
                                                  tmp_path):
        manager = SnapshotManager(tmp_path)
        manager.save(tree)  # no committed split recorded
        warm = warm_restart(manager, machine=m1)
        assert warm.controller is None


class TestResilientSnapshot:
    def test_snapshot_to_carries_adaptive_split(self, tree, m1, tmp_path):
        controller = AdaptiveController.for_tree(tree)
        resilient = ResilientHBPlusTree(tree, adaptive=controller)
        manager = SnapshotManager(tmp_path)
        path = resilient.snapshot_to(manager)
        assert path is not None
        assert resilient.stats.snapshots == 1
        result = manager.restore_latest(machine=m1)
        assert result.split == controller.split()

    def test_snapshot_failure_never_degrades_service(self, tree, data,
                                                     m1, tmp_path):
        keys, _values = data
        resilient = ResilientHBPlusTree(tree)
        probe = _probe(keys)
        expected = resilient.lookup_batch(probe)
        manager = SnapshotManager(
            tmp_path,
            injector=FaultInjector(FaultPlan(seed=7, torn_write=1.0)),
        )
        assert resilient.snapshot_to(manager) is None
        assert resilient.stats.snapshot_failures == 1
        assert not resilient.degraded
        assert np.array_equal(resilient.lookup_batch(probe), expected)


class TestBulkLoad:
    def test_bulk_load_sorts_unsorted_input(self, data, m1):
        keys, values = data
        rng = np.random.default_rng(2)
        order = rng.permutation(len(keys))
        tree = bulk_load("hb-regular", keys[order], values[order],
                         machine=m1)
        probe = _probe(keys)
        assert np.array_equal(
            tree.lookup_batch(probe),
            HBPlusTree(keys, values, machine=m1).lookup_batch(probe),
        )

    def test_bulk_matches_per_key(self, m1):
        keys, values = generate_dataset(600, seed=3)
        bulk = bulk_load("hb-regular", keys, values, machine=m1)
        perkey = cold_build_per_key(keys, values, m1)
        probe = _probe(keys, size=200)
        assert np.array_equal(
            bulk.lookup_batch(probe), perkey.lookup_batch(probe)
        )

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bulk_load("css", [1, 2, 3], [1, 2])


@pytest.mark.concurrency
class TestSnapshotUnderLoad:
    def _serve_and_snapshot(self, engine, manager, probe, expected):
        results = []
        errors = []

        def serve():
            try:
                for _ in range(8):
                    results.append(engine.lookup_batch(probe))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        worker = threading.Thread(target=serve)
        worker.start()
        paths = [manager.save_engine(engine, split=(0, 0.0))
                 for _ in range(3)]
        worker.join()
        assert not errors
        assert all(p is not None for p in paths)
        assert len(results) == 8
        for got in results:
            assert np.array_equal(got, expected)

    def test_batching_engine(self, data, m1, tmp_path):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        engine = BatchingEngine(tree)
        probe = _probe(keys)
        expected = tree.lookup_batch(probe)
        self._serve_and_snapshot(
            engine, SnapshotManager(tmp_path), probe, expected
        )

    def test_overlapped_engine(self, data, m1, tmp_path):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        engine = OverlappedEngine(tree, cpu_workers=2)
        probe = _probe(keys)
        expected = tree.lookup_batch(probe)
        manager = SnapshotManager(tmp_path)
        self._serve_and_snapshot(engine, manager, probe, expected)
        # and the snapshots restore to the same answers
        result = manager.restore_latest(machine=m1)
        assert np.array_equal(result.tree.lookup_batch(probe), expected)


# ----------------------------------------------------------------------
# the bit-identity property (satellite): any kind, any fault plan


def _build(kind, keys, values, machine, mem):
    if kind == "implicit-cpu":
        return ImplicitCpuBPlusTree(keys, values, mem=mem)
    if kind == "regular-cpu":
        return RegularCpuBPlusTree(keys, values, mem=mem)
    if kind == "css":
        return CssTree(keys, values, mem=mem)
    if kind == "fast":
        return FastTree(keys, values, mem=mem)
    if kind == "hb-implicit":
        return ImplicitHBPlusTree(keys, values, machine=machine, mem=mem)
    if kind == "hb-regular":
        return HBPlusTree(keys, values, machine=machine, mem=mem)
    raise AssertionError(kind)


def _modeled_counters(tree):
    """Every modeled counter a lookup batch can move on this tree."""
    out = {}
    mem = getattr(tree, "mem", None)
    if mem is not None:
        out.update(
            (f"mem.{k}", v) for k, v in stats_dict(mem.counters).items()
        )
    device = getattr(tree, "device", None)
    if device is not None:
        out["gpu.kernel_launches"] = device.kernel_launches
        out.update(
            (f"gpu.{k}", v) for k, v in stats_dict(device.stats).items()
        )
    link = getattr(tree, "link", None)
    if link is not None:
        out.update(
            (f"pcie.{k}", v) for k, v in stats_dict(link.stats).items()
        )
    return out


def _counter_delta(tree, probe):
    before = _modeled_counters(tree)
    results = tree.lookup_batch(probe)
    after = _modeled_counters(tree)
    delta = {
        k: after[k] - before[k]
        for k in after
        if isinstance(after[k], (int, float))
    }
    return results, delta


KINDS = ["implicit-cpu", "regular-cpu", "css", "fast",
         "hb-implicit", "hb-regular"]


class TestRestoredBitIdentity:
    @pytest.mark.parametrize("kind", KINDS)
    @given(
        seed=st.integers(0, 2**16),
        torn=st.sampled_from([0.0, 0.4, 1.0]),
        rot=st.sampled_from([0.0, 0.4, 1.0]),
        partial=st.sampled_from([0.0, 0.4]),
    )
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_restored_tree_is_bit_identical(self, kind, m1, tmp_path,
                                            seed, torn, rot, partial):
        """For every kind and any storage fault plan, a restored index
        answers the same lookups with identical results and identical
        modeled counters as the original.

        (``partial_read`` stays below 1.0: at 1.0 every read — even of
        an intact snapshot — is truncated, so no restore can ever
        succeed and there is nothing to compare.)
        """
        import tempfile

        keys, values = generate_dataset(300, seed=17)
        plan = FaultPlan(seed=seed, torn_write=torn,
                         storage_bitflip=rot, partial_read=partial)
        original = _build(kind, keys, values, m1, MemorySystem())
        with tempfile.TemporaryDirectory() as tmp:
            inj = FaultInjector(plan)
            manager = SnapshotManager(tmp, injector=inj)
            with inj.paused():
                assert manager.save(original) is not None
            # more attempts under fire: may tear, rot, or succeed
            for _ in range(2):
                manager.save(original)
            result = manager.restore_latest(
                machine=m1, mem=MemorySystem(),
                cold_source=lambda: _build(
                    kind, keys, values, m1, MemorySystem()
                ),
            )
        probe = _probe(keys, size=128)
        expected, expected_delta = _counter_delta(original, probe)
        got, got_delta = _counter_delta(result.tree, probe)
        assert np.array_equal(expected, got)
        assert got.dtype == expected.dtype
        assert got_delta == expected_delta
