"""Concurrent search/update engine (appendix B.3)."""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.core.mixed import ConcurrentQueryEngine, OptimisticMixedEngine
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_update_mix


@pytest.fixture(scope="module")
def data():
    return generate_dataset(1 << 13, seed=71)


@pytest.fixture()
def tree(data, m1):
    keys, values = data
    return HBPlusTree(keys, values, machine=m1, fill=0.7)


class TestFunctional:
    def test_searches_resolve(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 800, 0.2)
        res = ConcurrentQueryEngine(tree).run(mix)
        assert len(res.search_results) == len(mix.search_keys)
        assert np.all(res.search_results != tree.spec.max_value)

    def test_updates_apply(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 800, 0.5)
        ConcurrentQueryEngine(tree).run(mix)
        tree.cpu_tree.check_invariants()
        out = tree.lookup_batch(mix.update_keys)
        assert np.array_equal(out, mix.update_values)

    def test_mirror_consistent_after_run(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 600, 0.4)
        ConcurrentQueryEngine(tree).run(mix)
        probe = mix.update_keys[:32]
        literal = tree.gpu_search_bucket_literal(probe)
        vector = tree.gpu_search_bucket(probe).codes
        assert np.array_equal(literal, vector)

    def test_pure_search_mix(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 400, 0.0)
        res = ConcurrentQueryEngine(tree).run(mix)
        assert res.schedule.per_tag_count.get("update", 0) == 0
        assert res.sync_transfer_ns == 0.0

    def test_invalid_method(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 10, 0.5)
        with pytest.raises(ValueError):
            ConcurrentQueryEngine(tree).run(mix, "eager")


class TestTemporal:
    def test_throughput_decreases_with_update_ratio(self, data, m1):
        keys, values = data
        throughputs = []
        for ratio in (0.0, 0.5, 1.0):
            t = HBPlusTree(keys, values, machine=m1, fill=0.7)
            mix = make_update_mix(keys, 1000, ratio)
            res = ConcurrentQueryEngine(t).run(mix)
            throughputs.append(res.throughput_ops)
        assert throughputs == sorted(throughputs, reverse=True)

    def test_sync_slower_than_async_with_updates(self, data, m1):
        keys, values = data
        mix = make_update_mix(keys, 1000, 0.5)
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        res_async = ConcurrentQueryEngine(t).run(mix, "async")
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        res_sync = ConcurrentQueryEngine(t).run(mix, "sync")
        assert res_sync.throughput_ops < res_async.throughput_ops

    def test_contention_grows_with_update_share(self, data, m1):
        keys, values = data
        rates = []
        for ratio in (0.1, 0.9):
            t = HBPlusTree(keys, values, machine=m1, fill=0.7)
            mix = make_update_mix(keys, 1500, ratio)
            res = ConcurrentQueryEngine(t).run(mix)
            rates.append(res.schedule.lock_stats.contention_rate)
        assert rates[1] >= rates[0]

    def test_more_threads_higher_throughput(self, data, m1):
        keys, values = data
        mix = make_update_mix(keys, 1000, 0.25)
        t1 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        r1 = ConcurrentQueryEngine(t1, threads=1).run(mix)
        t2 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        r8 = ConcurrentQueryEngine(t2, threads=8).run(mix)
        assert r8.throughput_ops > 3 * r1.throughput_ops


class TestRegressions:
    def test_empty_mix_throughput_is_zero(self, tree):
        # S1: a zero-op mix used to ZeroDivisionError in throughput_ops
        from repro.workloads.queries import QueryMix

        empty = QueryMix(
            search_keys=np.empty(0, dtype=np.uint64),
            update_keys=np.empty(0, dtype=np.uint64),
            update_values=np.empty(0, dtype=np.uint64),
            is_update=np.empty(0, dtype=bool),
        )
        res = ConcurrentQueryEngine(tree).run(empty)
        assert res.throughput_ops == 0.0
        assert res.total_ns == 0.0

    def test_cost_sampling_without_replacement(self, data, m1):
        # S2: the cost probe draws each stored key at most once
        keys, values = data
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        rng = np.random.default_rng(67)
        all_keys = np.asarray(
            [k for k, _v in t.cpu_tree.items()], dtype=t.spec.dtype
        )
        sample = rng.choice(
            all_keys, size=min(2048, len(all_keys)), replace=False
        )
        assert len(np.unique(sample)) == len(sample)
        # and the engine constructs fine on trees smaller than the
        # sample budget (replace=False would throw if size > population)
        small = HBPlusTree(keys[:100], values[:100], machine=m1)
        ConcurrentQueryEngine(small)


class TestOptimisticEngine:
    @pytest.fixture()
    def gapped_tree(self, data, m1):
        keys, values = data
        return HBPlusTree(keys, values, machine=m1, gapped=True, fill=0.7)

    def test_beats_both_baseline_methods(self, data, m1):
        # buckets big enough to amortize the mirror sync's one-time
        # PCIe t_init; tiny buckets are transfer-init-bound for every
        # method and the comparison degenerates
        keys, values = data
        for ratio in (0.05, 0.5):
            mix = make_update_mix(keys, 2000, ratio)
            t = HBPlusTree(keys, values, machine=m1, gapped=True, fill=0.7)
            res_opt = OptimisticMixedEngine(t).run(mix)
            for method in ("async", "sync"):
                base = HBPlusTree(keys, values, machine=m1, fill=0.7)
                res = ConcurrentQueryEngine(base).run(mix, method)
                assert res_opt.throughput_ops > res.throughput_ops
                assert np.array_equal(res_opt.search_results,
                                      res.search_results)

    def test_retries_grow_with_update_ratio(self, data, m1):
        keys, values = data
        retries = []
        for ratio in (0.05, 0.5):
            t = HBPlusTree(keys, values, machine=m1, gapped=True, fill=0.7)
            mix = make_update_mix(keys, 2000, ratio)
            retries.append(OptimisticMixedEngine(t).run(mix).retries)
        assert retries[1] > retries[0]

    def test_sparse_sync_cheaper_than_rebuild(self, data, m1, gapped_tree):
        keys, _values = data
        mix = make_update_mix(keys, 2000, 0.05)
        res = OptimisticMixedEngine(gapped_tree).run(mix)
        assert not res.mirror_rebuilt
        assert res.dirty_nodes > 0
        assert 0 < res.sync_bytes < gapped_tree.i_segment_bytes
        assert res.gap_writes > 0

    def test_deletes_apply_and_mirror_holds(self, data, m1, gapped_tree):
        keys, _values = data
        mix = make_update_mix(keys, 800, 0.2, delete_ratio=0.1)
        res = OptimisticMixedEngine(gapped_tree).run(mix)
        assert res.schedule.per_tag_count.get("delete", 0) > 0
        for k in mix.delete_keys.tolist():
            assert gapped_tree.cpu_tree.lookup(int(k)) is None
        gapped_tree.cpu_tree.check_invariants()
        probe = mix.update_keys[:64]
        assert np.array_equal(
            gapped_tree.lookup_batch(probe),
            gapped_tree.cpu_tree.lookup_batch(probe),
        )

    def test_fault_plan_absorbed(self, data, m1, gapped_tree):
        from repro.faults import FaultInjector, FaultPlan

        keys, _values = data
        engine = OptimisticMixedEngine(gapped_tree)
        gapped_tree.attach_injector(
            FaultInjector(FaultPlan.uniform(0.2, seed=5))
        )
        mix = make_update_mix(keys, 1500, 0.3)
        res = engine.run(mix)
        gapped_tree.injector.disable()
        assert np.array_equal(
            res.search_results,
            gapped_tree.cpu_tree.lookup_batch(mix.search_keys),
        )
        probe = np.concatenate([mix.search_keys[:64], mix.update_keys[:64]])
        assert np.array_equal(
            gapped_tree.lookup_batch(probe),
            gapped_tree.cpu_tree.lookup_batch(probe),
        )

    def test_works_on_ungapped_tree(self, data, m1):
        keys, values = data
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        mix = make_update_mix(keys, 500, 0.25)
        res = OptimisticMixedEngine(t).run(mix)
        assert res.gap_writes == 0  # compact fallback costing
        assert np.array_equal(
            res.search_results, t.cpu_tree.lookup_batch(mix.search_keys)
        )

    def test_exhausted_fault_ladder_raises_typed_fault(self, data, m1,
                                                       gapped_tree):
        # a rate-1.0 plan can never sync: the bounded retry ladder must
        # propagate the *typed* FaultError (so resilience wrappers can
        # degrade on it), not die constructing a new one
        from repro.faults import FaultError, FaultInjector, FaultPlan

        keys, _values = data
        engine = OptimisticMixedEngine(gapped_tree)
        gapped_tree.attach_injector(
            FaultInjector(FaultPlan.uniform(1.0, seed=9))
        )
        mix = make_update_mix(keys, 200, 0.3)
        with pytest.raises(FaultError):
            engine.run(mix)
