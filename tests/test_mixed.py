"""Concurrent search/update engine (appendix B.3)."""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.core.mixed import ConcurrentQueryEngine
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_update_mix


@pytest.fixture(scope="module")
def data():
    return generate_dataset(1 << 13, seed=71)


@pytest.fixture()
def tree(data, m1):
    keys, values = data
    return HBPlusTree(keys, values, machine=m1, fill=0.7)


class TestFunctional:
    def test_searches_resolve(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 800, 0.2)
        res = ConcurrentQueryEngine(tree).run(mix)
        assert len(res.search_results) == len(mix.search_keys)
        assert np.all(res.search_results != tree.spec.max_value)

    def test_updates_apply(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 800, 0.5)
        ConcurrentQueryEngine(tree).run(mix)
        tree.cpu_tree.check_invariants()
        out = tree.lookup_batch(mix.update_keys)
        assert np.array_equal(out, mix.update_values)

    def test_mirror_consistent_after_run(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 600, 0.4)
        ConcurrentQueryEngine(tree).run(mix)
        probe = mix.update_keys[:32]
        literal = tree.gpu_search_bucket_literal(probe)
        vector = tree.gpu_search_bucket(probe).codes
        assert np.array_equal(literal, vector)

    def test_pure_search_mix(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 400, 0.0)
        res = ConcurrentQueryEngine(tree).run(mix)
        assert res.schedule.per_tag_count.get("update", 0) == 0
        assert res.sync_transfer_ns == 0.0

    def test_invalid_method(self, tree, data):
        keys, _values = data
        mix = make_update_mix(keys, 10, 0.5)
        with pytest.raises(ValueError):
            ConcurrentQueryEngine(tree).run(mix, "eager")


class TestTemporal:
    def test_throughput_decreases_with_update_ratio(self, data, m1):
        keys, values = data
        throughputs = []
        for ratio in (0.0, 0.5, 1.0):
            t = HBPlusTree(keys, values, machine=m1, fill=0.7)
            mix = make_update_mix(keys, 1000, ratio)
            res = ConcurrentQueryEngine(t).run(mix)
            throughputs.append(res.throughput_ops)
        assert throughputs == sorted(throughputs, reverse=True)

    def test_sync_slower_than_async_with_updates(self, data, m1):
        keys, values = data
        mix = make_update_mix(keys, 1000, 0.5)
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        res_async = ConcurrentQueryEngine(t).run(mix, "async")
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        res_sync = ConcurrentQueryEngine(t).run(mix, "sync")
        assert res_sync.throughput_ops < res_async.throughput_ops

    def test_contention_grows_with_update_share(self, data, m1):
        keys, values = data
        rates = []
        for ratio in (0.1, 0.9):
            t = HBPlusTree(keys, values, machine=m1, fill=0.7)
            mix = make_update_mix(keys, 1500, ratio)
            res = ConcurrentQueryEngine(t).run(mix)
            rates.append(res.schedule.lock_stats.contention_rate)
        assert rates[1] >= rates[0]

    def test_more_threads_higher_throughput(self, data, m1):
        keys, values = data
        mix = make_update_mix(keys, 1000, 0.25)
        t1 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        r1 = ConcurrentQueryEngine(t1, threads=1).run(mix)
        t2 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        r8 = ConcurrentQueryEngine(t2, threads=8).run(mix)
        assert r8.throughput_ops > 3 * r1.throughput_ops
