"""Unit tests of the deterministic fault-injection subsystem."""

import numpy as np
import pytest

from repro.faults import (
    FaultError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    KernelHang,
    KernelLaunchFault,
    PartialRead,
    SyncInterrupted,
    TornWrite,
    TransferFault,
    TransferTimeout,
)


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(transfer_fail=1.5)
        with pytest.raises(ValueError):
            FaultPlan(bitflip=-0.1)

    def test_uniform_sets_every_rate(self):
        plan = FaultPlan.uniform(0.3, seed=5)
        assert plan.seed == 5
        for name in (
            "transfer_fail", "transfer_timeout", "kernel_fail",
            "kernel_hang", "bitflip", "sync_interrupt",
        ):
            assert getattr(plan, name) == 0.3

    def test_none_never_fires(self):
        inj = FaultInjector(FaultPlan.none(seed=1))
        for _ in range(200):
            inj.on_transfer(64)
            inj.on_kernel_launch()
            inj.on_sync()
        assert inj.stats.total_faults == 0

    def test_plan_is_immutable(self):
        plan = FaultPlan.uniform(0.1)
        with pytest.raises(Exception):
            plan.transfer_fail = 0.9


def _drive(injector, ops=300):
    """Exercise every hook a fixed number of times, collecting faults."""
    arr = np.arange(64, dtype=np.uint64)
    for _ in range(ops):
        for hook in (
            lambda: injector.on_transfer(4096),
            injector.on_kernel_launch,
            injector.on_sync,
            lambda: injector.maybe_corrupt(arr.copy()),
        ):
            try:
                hook()
            except FaultError:
                pass
    return injector.schedule()


class TestInjectorDeterminism:
    def test_identical_replay(self):
        a = _drive(FaultInjector(FaultPlan.uniform(0.2, seed=9)))
        b = _drive(FaultInjector(FaultPlan.uniform(0.2, seed=9)))
        assert a == b
        assert len(a) > 0

    def test_seed_changes_schedule(self):
        a = _drive(FaultInjector(FaultPlan.uniform(0.2, seed=9)))
        b = _drive(FaultInjector(FaultPlan.uniform(0.2, seed=10)))
        assert a != b

    def test_common_random_numbers(self):
        """Raising the rate only adds faults, never moves them."""
        low = _drive(FaultInjector(FaultPlan.uniform(0.1, seed=9)))
        high = _drive(FaultInjector(FaultPlan.uniform(0.4, seed=9)))
        # every (kind-category site, index) that failed at the low rate
        # also fails at the high rate; the timeout draw can upgrade to a
        # fail (checked first), so compare per-(site, index) firing
        low_fired = {(site, index) for _kind, site, index, _d in low}
        high_fired = {(site, index) for _kind, site, index, _d in high}
        assert low_fired <= high_fired
        assert len(high_fired) > len(low_fired)

    def test_sites_independent(self):
        """Decisions at one site don't shift another site's stream."""
        inj_a = FaultInjector(FaultPlan.uniform(0.3, seed=4))
        for _ in range(50):
            try:
                inj_a.on_kernel_launch()
            except FaultError:
                pass
        kernel_only = [e for e in inj_a.schedule() if e[1] == "kernel"]

        inj_b = FaultInjector(FaultPlan.uniform(0.3, seed=4))
        for _ in range(50):
            try:
                inj_b.on_transfer(128)
            except FaultError:
                pass
            try:
                inj_b.on_kernel_launch()
            except FaultError:
                pass
        interleaved = [e for e in inj_b.schedule() if e[1] == "kernel"]
        assert kernel_only == interleaved


class TestInjectorBehavior:
    def test_fault_types(self):
        inj = FaultInjector(FaultPlan(transfer_fail=1.0))
        with pytest.raises(TransferFault):
            inj.on_transfer(8)
        inj = FaultInjector(FaultPlan(transfer_timeout=1.0))
        with pytest.raises(TransferTimeout):
            inj.on_transfer(8)
        inj = FaultInjector(FaultPlan(kernel_fail=1.0))
        with pytest.raises(KernelLaunchFault):
            inj.on_kernel_launch()
        inj = FaultInjector(FaultPlan(kernel_hang=1.0))
        with pytest.raises(KernelHang):
            inj.on_kernel_launch()
        inj = FaultInjector(FaultPlan(sync_interrupt=1.0))
        with pytest.raises(SyncInterrupted):
            inj.on_sync()

    def test_bitflip_flips_exactly_one_bit(self):
        inj = FaultInjector(FaultPlan(bitflip=1.0, seed=3))
        arr = np.arange(32, dtype=np.uint64)
        before = arr.copy()
        flips = inj.maybe_corrupt(arr)
        assert len(flips) == 1
        elem, bit = flips[0]
        assert arr[elem] == before[elem] ^ np.uint64(1 << bit)
        changed = np.nonzero(arr != before)[0]
        assert list(changed) == [elem]

    def test_bitflip_empty_array_noop(self):
        inj = FaultInjector(FaultPlan(bitflip=1.0))
        assert inj.maybe_corrupt(np.empty(0, dtype=np.uint64)) == []

    def test_paused_suppresses_and_preserves_counters(self):
        inj = FaultInjector(FaultPlan.uniform(1.0, seed=2))
        with inj.paused():
            inj.on_transfer(8)
            inj.on_kernel_launch()
        assert inj.stats.total_faults == 0
        with pytest.raises(FaultError):
            inj.on_transfer(8)

    def test_disable_models_faults_clearing(self):
        inj = FaultInjector(FaultPlan.uniform(1.0, seed=2))
        inj.disable()
        inj.on_transfer(8)
        inj.on_sync()
        assert inj.stats.total_faults == 0
        inj.enable()
        with pytest.raises(FaultError):
            inj.on_sync()

    def test_stats_snapshot_counts(self):
        inj = FaultInjector(FaultPlan(transfer_fail=1.0))
        for _ in range(3):
            with pytest.raises(TransferFault):
                inj.on_transfer(8)
        snap = inj.stats.snapshot()
        assert snap["transfer_ops"] == 3
        assert snap["transfer_fails"] == 3
        assert snap["total_faults"] == 3

    def test_events_carry_kind_and_site(self):
        inj = FaultInjector(FaultPlan(sync_interrupt=1.0))
        with pytest.raises(SyncInterrupted):
            inj.on_sync()
        (event,) = inj.events
        assert event.kind is FaultKind.SYNC_INTERRUPT
        assert event.site == "sync"
        assert event.index == 0


class TestStorageFaults:
    def test_storage_plan_sets_only_storage_rates(self):
        plan = FaultPlan.storage(0.4, seed=6)
        assert plan.seed == 6
        for name in ("torn_write", "storage_bitflip", "partial_read"):
            assert getattr(plan, name) == 0.4
        for name in (
            "transfer_fail", "transfer_timeout", "kernel_fail",
            "kernel_hang", "sync_interrupt", "bitflip",
        ):
            assert getattr(plan, name) == 0.0

    def test_torn_write_carries_fraction(self):
        inj = FaultInjector(FaultPlan(seed=1, torn_write=1.0))
        with pytest.raises(TornWrite) as exc:
            inj.on_storage_write(1024)
        assert 0.0 <= exc.value.fraction < 1.0
        assert inj.stats.torn_writes == 1
        assert inj.stats.storage_write_ops == 1

    def test_partial_read_carries_fraction(self):
        inj = FaultInjector(FaultPlan(seed=1, partial_read=1.0))
        with pytest.raises(PartialRead) as exc:
            inj.on_storage_read(1024)
        assert 0.0 <= exc.value.fraction < 1.0
        assert inj.stats.partial_reads == 1
        assert inj.stats.storage_read_ops == 1

    def test_corrupt_bytes_flips_one_bit_on_a_copy(self):
        inj = FaultInjector(FaultPlan(seed=1, storage_bitflip=1.0))
        original = bytes(range(64))
        corrupted, flips = inj.corrupt_bytes(original)
        assert original == bytes(range(64))  # input never mutated
        assert len(flips) == 1
        diff = [
            (i, a ^ b) for i, (a, b) in enumerate(zip(original, corrupted))
            if a != b
        ]
        assert len(diff) == 1
        byte, xor = diff[0]
        assert byte == flips[0][0]
        assert xor == 1 << flips[0][1]
        assert inj.stats.storage_bitflips == 1

    def test_corrupt_bytes_noop_on_empty(self):
        inj = FaultInjector(FaultPlan(seed=1, storage_bitflip=1.0))
        corrupted, flips = inj.corrupt_bytes(b"")
        assert corrupted == b""
        assert flips == []

    def test_zero_rate_never_fires(self):
        inj = FaultInjector(FaultPlan(seed=1))
        for _ in range(50):
            inj.on_storage_write(128)
            inj.on_storage_read(128)
            data, flips = inj.corrupt_bytes(b"abc")
            assert data == b"abc" and flips == []
        assert inj.stats.total_faults == 0
        assert inj.stats.storage_write_ops == 50

    def test_storage_schedule_replays_deterministically(self):
        def drive(inj):
            for _ in range(30):
                try:
                    inj.on_storage_write(4096)
                except TornWrite:
                    pass
                inj.corrupt_bytes(b"payload" * 10)
                try:
                    inj.on_storage_read(4096)
                except PartialRead:
                    pass
            return inj.schedule()

        a = drive(FaultInjector(FaultPlan.storage(0.35, seed=77)))
        b = drive(FaultInjector(FaultPlan.storage(0.35, seed=77)))
        c = drive(FaultInjector(FaultPlan.storage(0.35, seed=78)))
        assert a == b
        assert a != c
        assert len(a) > 0

    def test_storage_sites_independent_of_gpu_sites(self):
        plan = FaultPlan(seed=12, torn_write=0.5, transfer_fail=0.5)

        def storage_schedule(inj):
            for _ in range(20):
                try:
                    inj.on_storage_write(64)
                except TornWrite:
                    pass
            return [e for e in inj.schedule() if e[1] == "storage.write"]

        alone = storage_schedule(FaultInjector(plan))
        mixed_inj = FaultInjector(plan)
        for _ in range(20):  # interleave GPU-site ops
            try:
                mixed_inj.on_transfer(64)
            except FaultError:
                pass
        mixed = storage_schedule(mixed_inj)
        assert alone == mixed

    def test_paused_suppresses_storage_faults(self):
        inj = FaultInjector(FaultPlan.storage(1.0, seed=2))
        with inj.paused():
            inj.on_storage_write(64)
            inj.on_storage_read(64)
            data, flips = inj.corrupt_bytes(b"xy")
        assert data == b"xy" and flips == []
        assert inj.stats.total_faults == 0
