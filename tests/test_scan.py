"""The batched range-scan path (PR 9).

Covers, in one place, what DESIGN.md §15 promises:

* the vectorised leaf-chain scan is result- AND modeled-counter-
  identical to the scalar reference walk, full path and leaf stage,
  on every leaf layout (regular, gapped, half-full gapped, implicit);
* every engine entry point (``BatchingEngine.run_scans``,
  ``OverlappedEngine.run_scans``, ``ResilientHBPlusTree.run_scans``
  with and without an injected fault plan) is bit-identical to the
  sequential ``range_query`` walk;
* scans serialize against quiesce/snapshot windows through the shared
  serve lock, in both directions;
* ``bucket_costs`` samples its workload without replacement whenever
  the tree can fill the bucket (the PR-9 sampling regression);
* property-based: all three layouts agree with each other and with a
  sorted reference model on arbitrary spans.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import BatchingEngine
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.overlap import OverlappedEngine
from repro.core.resilience import ResilientHBPlusTree
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.gapped import GappedCpuBPlusTree
from repro.faults import FaultInjector, FaultPlan
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_scan_queries


@pytest.fixture(scope="module")
def data():
    return generate_dataset(4096, seed=17)


def _spans(keys, n, width, seed=3):
    sk = np.sort(np.asarray(keys))
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, len(sk) - width, size=n)
    return [(int(sk[s]), int(sk[s + width - 1])) for s in starts]


def _edge_spans(keys):
    """The boundary shapes the scan loops special-case."""
    sk = np.sort(np.asarray(keys))
    return [
        (int(sk[0]), int(sk[0])),              # single first key
        (int(sk[-1]), int(sk[-1])),            # single last key
        (int(sk[-1]), int(sk[-1]) + 4096),     # hi past the last leaf
        (0, int(sk[2])),                       # lo before the first key
        (int(sk[100]), int(sk[50])),           # lo > hi
        (int(sk[7]) + 1, int(sk[7]) + 1) if sk[7] + 1 < sk[8]
        else (int(sk[7]), int(sk[7])),         # span between stored keys
    ]


def _counter_delta(tree, fn):
    before = dict(vars(tree.mem.counters))
    out = fn()
    after = vars(tree.mem.counters)
    return out, {k: v - before[k] for k, v in after.items()}


TREE_VARIANTS = [
    ("regular", dict()),
    ("gapped", dict(gapped=True)),
    ("gapped-half", dict(gapped=True, fill=0.5)),
]


class TestScalarVectorEquivalence:
    @pytest.mark.parametrize("name,kwargs", TREE_VARIANTS,
                             ids=[v[0] for v in TREE_VARIANTS])
    def test_full_path_results_and_counters(self, data, m1, name, kwargs):
        keys, values = data
        cases = _spans(keys, 24, 80) + _edge_spans(keys)
        ts = HBPlusTree(keys, values, machine=m1, **kwargs).cpu_tree
        tv = HBPlusTree(keys, values, machine=m1, **kwargs).cpu_tree
        rs, ds = _counter_delta(
            ts, lambda: [ts.range_query_scalar(lo, hi) for lo, hi in cases]
        )
        rv, dv = _counter_delta(
            tv, lambda: [tv.range_query(lo, hi) for lo, hi in cases]
        )
        assert rs == rv
        assert ds == dv

    def test_full_path_implicit(self, data, m1):
        keys, values = data
        cases = _spans(keys, 24, 80) + _edge_spans(keys)
        ts = ImplicitHBPlusTree(keys, values, machine=m1).cpu_tree
        tv = ImplicitHBPlusTree(keys, values, machine=m1).cpu_tree
        rs, ds = _counter_delta(
            ts, lambda: [ts.range_query_scalar(lo, hi) for lo, hi in cases]
        )
        rv, dv = _counter_delta(
            tv, lambda: [tv.range_query(lo, hi) for lo, hi in cases]
        )
        assert rs == rv
        assert ds == dv

    @pytest.mark.parametrize("name,kwargs", TREE_VARIANTS,
                             ids=[v[0] for v in TREE_VARIANTS])
    def test_leaf_stage_from_exact_and_early_leaves(self, data, m1,
                                                    name, kwargs):
        """``range_scan_from_scalar`` vs ``range_scan_from``, both from
        the exact descend leaf and from the leaf before it (the GPU
        bucket stage may hand the walk an at-or-before start leaf)."""
        keys, values = data
        cases = _spans(keys, 16, 200) + _edge_spans(keys)
        ts = HBPlusTree(keys, values, machine=m1, **kwargs).cpu_tree
        tv = HBPlusTree(keys, values, machine=m1, **kwargs).cpu_tree
        triples = []
        for lo, hi in cases:
            node = ts._descend(int(lo), instrument=False)[0]
            triples.append((node, lo, hi))
            prev = int(ts.leaves.prev[node])
            if prev >= 0:
                triples.append((prev, lo, hi))
        rs, ds = _counter_delta(ts, lambda: [
            ts.range_scan_from_scalar(n, lo, hi) for n, lo, hi in triples
        ])
        rv, dv = _counter_delta(tv, lambda: [
            tv.range_scan_from(n, lo, hi) for n, lo, hi in triples
        ])
        assert rs == rv
        assert ds == dv

    def test_leaf_stage_matches_full_path_results(self, data, m1):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1).cpu_tree
        for lo, hi in _spans(keys, 8, 120, seed=9):
            node = tree._descend(int(lo), instrument=False)[0]
            assert tree.range_scan_from(node, lo, hi) \
                == tree.range_query(lo, hi)


class TestEngineBitIdentity:
    @pytest.mark.parametrize("cls", [HBPlusTree, ImplicitHBPlusTree],
                             ids=["regular", "implicit"])
    def test_batching_and_overlap_match_walk(self, data, m1, cls):
        keys, values = data
        los, his = make_scan_queries(keys, 96, 48, dist="geometric",
                                     seed=5)
        ref_tree = cls(keys, values, machine=m1)
        ref = [ref_tree.range_query(int(lo), int(hi))
               for lo, hi in zip(los.tolist(), his.tolist())]
        batch = BatchingEngine(cls(keys, values, machine=m1),
                               bucket_size=32)
        assert batch.run_scans(los, his) == ref
        assert batch.stats.scan_tuples == sum(len(r) for r in ref)
        overlap = OverlappedEngine(cls(keys, values, machine=m1))
        got = overlap.run_scans(los, his)
        overlap.quiesce()
        assert got == ref

    def test_resilient_matches_walk_under_faults(self, data, m1):
        keys, values = data
        los, his = make_scan_queries(keys, 64, 32, dist="geometric",
                                     seed=6)
        ref_tree = HBPlusTree(keys, values, machine=m1)
        ref = [ref_tree.range_query(int(lo), int(hi))
               for lo, hi in zip(los.tolist(), his.tolist())]
        plain = ResilientHBPlusTree(HBPlusTree(keys, values, machine=m1))
        assert plain.run_scans(los, his) == ref
        faulted_tree = HBPlusTree(keys, values, machine=m1)
        injector = FaultInjector(FaultPlan.uniform(0.5, seed=23))
        faulted_tree.attach_injector(injector)
        faulted = ResilientHBPlusTree(faulted_tree, injector=injector)
        assert faulted.run_scans(los, his) == ref
        assert faulted.stats.faults_handled > 0


class TestServeLockSerialization:
    """Scans and quiesce/snapshot windows exclude each other through
    the tree's shared serve lock — in both directions."""

    @pytest.mark.concurrency
    def test_scan_waits_for_quiesce_window(self, data, m1):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        lo, hi = _spans(keys, 1, 64)[0]
        ref = tree.range_query(lo, hi)
        done = threading.Event()
        out = []

        def scanner():
            out.append(tree.range_query(lo, hi))
            done.set()

        with tree.serve_lock:  # an open quiesce/snapshot window
            worker = threading.Thread(target=scanner)
            worker.start()
            # the scan must not slip inside the window
            assert not done.wait(0.2)
        worker.join(5)
        assert done.is_set()
        assert out[0] == ref

    @pytest.mark.concurrency
    def test_quiesce_waits_for_inflight_scan(self, data, m1,
                                             monkeypatch):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        engine = BatchingEngine(tree)
        lo, hi = _spans(keys, 1, 64)[0]
        inside = threading.Event()
        release = threading.Event()
        real = tree.cpu_tree.range_query

        def held_open(lo_, hi_):
            inside.set()
            release.wait(5)
            return real(lo_, hi_)

        monkeypatch.setattr(tree.cpu_tree, "range_query", held_open)
        out = []
        scanner = threading.Thread(
            target=lambda: out.append(tree.range_query(lo, hi))
        )
        scanner.start()
        assert inside.wait(5)
        quiesced = threading.Event()

        def snapshot():
            with engine.quiesce():
                pass
            quiesced.set()

        snapshotter = threading.Thread(target=snapshot)
        snapshotter.start()
        # the snapshot window must wait for the scan to drain
        assert not quiesced.wait(0.2)
        release.set()
        scanner.join(5)
        snapshotter.join(5)
        assert quiesced.is_set()
        monkeypatch.undo()
        assert out[0] == tree.range_query(lo, hi)


class TestBucketCostsSampling:
    def test_sample_drawn_without_replacement(self, data, m1,
                                              monkeypatch):
        """With >= 4096 stored keys the sampled bucket must be all
        distinct: duplicate draws inflate the sample's unique fraction
        and bias the sorted-pipeline gain the planner commits (the
        PR-9 sampling regression)."""
        import repro.core.batching as batching_mod

        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        assert len(tree.cpu_tree.stored_keys()) >= 4096
        captured = {}
        real_plan = batching_mod.plan_bucket

        def spy(sample, dtype=None):
            captured["n"] = len(sample)
            captured["unique"] = len(np.unique(sample))
            return real_plan(sample, dtype=dtype)

        monkeypatch.setattr(batching_mod, "plan_bucket", spy)
        tree.bucket_costs(sort_batches=True)
        assert captured["n"] == 4096
        assert captured["unique"] == captured["n"]


# -- property-based: the three layouts agree with a sorted model ------

_KEYS = st.lists(st.integers(min_value=0, max_value=1 << 48),
                 min_size=2, max_size=220, unique=True)


@settings(max_examples=30, deadline=None)
@given(keys=_KEYS, data=st.data())
def test_layouts_agree_with_sorted_model(keys, data):
    keys = np.sort(np.asarray(keys, dtype=np.uint64))
    values = np.arange(1, len(keys) + 1, dtype=np.uint64)
    lo = data.draw(st.one_of(
        st.sampled_from(keys.tolist()),
        st.integers(min_value=0, max_value=1 << 48),
    ), label="lo")
    hi = data.draw(st.one_of(
        st.sampled_from(keys.tolist()),
        st.integers(min_value=0, max_value=1 << 48),
    ), label="hi")
    lo, hi = int(lo), int(hi)
    model = [
        (int(k), int(v)) for k, v in zip(keys.tolist(), values.tolist())
        if lo <= k <= hi
    ]
    trees = [
        RegularCpuBPlusTree(keys, values),
        GappedCpuBPlusTree(keys, values, fill=0.6),
        ImplicitCpuBPlusTree(keys, values),
    ]
    for tree in trees:
        assert tree.range_query(lo, hi) == model
        assert tree.range_query_scalar(lo, hi) == model


@settings(max_examples=15, deadline=None)
@given(keys=_KEYS)
def test_leaf_stage_twins_agree_on_any_start_leaf(keys):
    """``range_scan_from`` ≡ ``range_scan_from_scalar`` from *every*
    leaf in the chain, not just the descend leaf."""
    keys = np.sort(np.asarray(keys, dtype=np.uint64))
    values = np.arange(1, len(keys) + 1, dtype=np.uint64)
    lo, hi = int(keys[len(keys) // 3]), int(keys[2 * len(keys) // 3])
    for cls, kwargs in ((RegularCpuBPlusTree, {}),
                        (GappedCpuBPlusTree, {"fill": 0.5})):
        tree = cls(keys, values, **kwargs)
        for node in tree.leaf_chain().tolist():
            assert tree.range_scan_from(node, lo, hi) \
                == tree.range_scan_from_scalar(node, lo, hi)


def test_empty_and_single_leaf_trees():
    empty_keys = np.asarray([], dtype=np.uint64)
    for cls in (RegularCpuBPlusTree, GappedCpuBPlusTree):
        tree = cls(empty_keys, empty_keys)
        assert tree.range_query(0, 1 << 40) == []
        assert tree.range_query_scalar(0, 1 << 40) == []
    keys = np.asarray([10, 20, 30], dtype=np.uint64)
    values = np.asarray([1, 2, 3], dtype=np.uint64)
    for cls in (RegularCpuBPlusTree, GappedCpuBPlusTree,
                ImplicitCpuBPlusTree):
        tree = cls(keys, values)
        assert tree.range_query(10, 30) == [(10, 1), (20, 2), (30, 3)]
        assert tree.range_query(15, 25) == [(20, 2)]
        assert tree.range_query(31, 40) == []
        assert tree.range_query(25, 15) == []
