"""Batch update execution (section 5.6, Figs 13-14)."""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.core.update import (
    ASYNC_GROUP_SIZE,
    AsyncBatchUpdater,
    SyncUpdater,
    UpdateStats,
    apply_cpu_only,
)
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_insert_batch


@pytest.fixture(scope="module")
def base_data():
    return generate_dataset(4096, seed=31)


@pytest.fixture()
def tree(base_data, m1):
    keys, values = base_data
    return HBPlusTree(keys, values, machine=m1, fill=0.7)


@pytest.fixture(scope="module")
def batch(base_data):
    keys, _values = base_data
    return make_insert_batch(keys, 1024, 64, seed=41)


class TestAsyncUpdater:
    def test_functional_inserts(self, tree, base_data, batch):
        keys, values = base_data
        upd_keys, upd_vals = batch
        stats = AsyncBatchUpdater(tree).apply(upd_keys, upd_vals)
        tree.cpu_tree.check_invariants()
        assert stats.applied + stats.deferred == len(upd_keys)
        assert np.array_equal(tree.lookup_batch(upd_keys), upd_vals)
        # old contents survive
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_mirror_consistent_after_update(self, tree, batch):
        upd_keys, upd_vals = batch
        AsyncBatchUpdater(tree).apply(upd_keys, upd_vals)
        literal = tree.gpu_search_bucket_literal(upd_keys[:64])
        vector = tree.gpu_search_bucket(upd_keys[:64]).codes
        assert np.array_equal(literal, vector)

    def test_deletes(self, tree, base_data):
        keys, _values = base_data
        victims = keys[:200]
        stats = AsyncBatchUpdater(tree).apply([], [], deletes=victims)
        tree.cpu_tree.check_invariants()
        assert stats.applied + stats.deferred == 200
        out = tree.lookup_batch(victims)
        assert np.all(out == tree.spec.max_value)

    def test_most_updates_avoid_splits(self, tree, batch):
        """Paper: >99% of updates resolve without node split/merge
        thanks to the big leaves (tree built at fill=0.7)."""
        upd_keys, upd_vals = batch
        stats = AsyncBatchUpdater(tree).apply(upd_keys, upd_vals)
        assert stats.deferred_fraction < 0.01

    def test_multithreaded_faster_than_single(self, base_data, batch, m1):
        keys, values = base_data
        upd_keys, upd_vals = batch

        t1 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        s1 = AsyncBatchUpdater(t1, threads=1).apply(
            upd_keys, upd_vals, transfer=False
        )
        t2 = HBPlusTree(keys, values, machine=m1, fill=0.7)
        s16 = AsyncBatchUpdater(t2).apply(upd_keys, upd_vals, transfer=False)
        ratio = s16.throughput_qps(False) / s1.throughput_qps(False)
        # paper Fig 13a: ~3x
        assert 2.0 <= ratio <= 4.0

    def test_transfer_time_included_when_asked(self, base_data, batch, m1):
        keys, values = base_data
        upd_keys, upd_vals = batch
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        stats = AsyncBatchUpdater(t).apply(upd_keys, upd_vals, transfer=True)
        assert stats.transfer_ns > 0
        assert stats.total_ns > stats.modify_ns

    def test_lock_accounting(self, tree, batch):
        upd_keys, upd_vals = batch
        stats = AsyncBatchUpdater(tree).apply(upd_keys, upd_vals)
        assert stats.lock_acquisitions == stats.applied
        assert stats.lock_conflicts >= 0

    def test_upsert_existing_key(self, tree, base_data):
        keys, _values = base_data
        stats = AsyncBatchUpdater(tree).apply(
            keys[:50], np.arange(50, dtype=np.uint64)
        )
        assert stats.applied == 50
        out = tree.lookup_batch(keys[:50])
        assert np.array_equal(out, np.arange(50, dtype=np.uint64))

    def test_group_size_is_16k(self):
        assert ASYNC_GROUP_SIZE == 16 * 1024


class TestSyncUpdater:
    def test_functional_inserts(self, tree, base_data, batch):
        keys, values = base_data
        upd_keys, upd_vals = batch
        stats = SyncUpdater(tree).apply(upd_keys, upd_vals)
        tree.cpu_tree.check_invariants()
        assert stats.applied == len(upd_keys)
        assert np.array_equal(tree.lookup_batch(upd_keys), upd_vals)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_mirror_consistent(self, tree, batch):
        upd_keys, upd_vals = batch
        SyncUpdater(tree).apply(upd_keys, upd_vals)
        literal = tree.gpu_search_bucket_literal(upd_keys[:64])
        vector = tree.gpu_search_bucket(upd_keys[:64]).codes
        assert np.array_equal(literal, vector)

    def test_nodes_synced_counted(self, tree, batch):
        upd_keys, upd_vals = batch
        stats = SyncUpdater(tree).apply(upd_keys, upd_vals)
        assert stats.synced_nodes > 0
        assert stats.synced_nodes <= len(upd_keys)

    def test_deletes(self, tree, base_data):
        keys, _values = base_data
        stats = SyncUpdater(tree).apply([], [], deletes=keys[:100])
        assert stats.applied == 100
        out = tree.lookup_batch(keys[:100])
        assert np.all(out == tree.spec.max_value)

    def test_batched_sync_fewer_pcie_transfers(self, base_data, m1, batch):
        """Ranged dirty-node sync must beat one transfer per node."""
        keys, values = base_data
        upd_keys, upd_vals = batch

        t_batched = HBPlusTree(keys, values, machine=m1, fill=0.7)
        t_batched.link.stats.reset()
        stats_b = SyncUpdater(t_batched, batched=True).apply(
            upd_keys, upd_vals
        )
        batched_transfers = t_batched.link.stats.transfers

        t_pernode = HBPlusTree(keys, values, machine=m1, fill=0.7)
        t_pernode.link.stats.reset()
        stats_p = SyncUpdater(t_pernode, batched=False).apply(
            upd_keys, upd_vals
        )
        pernode_transfers = t_pernode.link.stats.transfers

        # the legacy path re-pushes a node once per op; the batched
        # path dedups to the distinct dirty nodes of the batch
        assert 0 < stats_b.synced_nodes <= stats_p.synced_nodes
        assert batched_transfers < pernode_transfers
        # both mirrors answer identically after the batch
        probe = upd_keys[:64]
        assert np.array_equal(
            t_batched.gpu_search_bucket(probe).codes,
            t_pernode.gpu_search_bucket(probe).codes,
        )
        assert np.array_equal(
            t_batched.lookup_batch(upd_keys), upd_vals
        )

    def test_legacy_pernode_path_still_works(self, tree, batch):
        upd_keys, upd_vals = batch
        stats = SyncUpdater(tree, batched=False).apply(upd_keys, upd_vals)
        tree.cpu_tree.check_invariants()
        assert stats.applied == len(upd_keys)
        assert np.array_equal(tree.lookup_batch(upd_keys), upd_vals)


class TestCrossover:
    """Fig 14's property: sync wins small batches, async wins large.

    Uses a larger base tree so the batch does not force leaf splits
    (which would measure deferral costs, not the transfer trade-off).
    """

    @pytest.fixture(scope="class")
    def big_base(self):
        return generate_dataset(32768, seed=34)

    def test_sync_cheaper_for_tiny_batches(self, big_base, m1):
        keys, values = big_base
        upd_keys, upd_vals = make_insert_batch(keys, 32, 64, seed=51)
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        sync_stats = SyncUpdater(t).apply(upd_keys, upd_vals)
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        async_stats = AsyncBatchUpdater(t).apply(
            upd_keys, upd_vals, transfer=True
        )
        assert sync_stats.total_ns < async_stats.total_ns

    def test_async_cheaper_for_big_batches(self, big_base, m1):
        keys, values = big_base
        upd_keys, upd_vals = make_insert_batch(keys, 4096, 64, seed=52)
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        sync_stats = SyncUpdater(t).apply(upd_keys, upd_vals)
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        async_stats = AsyncBatchUpdater(t).apply(
            upd_keys, upd_vals, transfer=True
        )
        assert async_stats.deferred_fraction < 0.01
        assert async_stats.total_ns < sync_stats.total_ns


class TestUpdateStats:
    def test_zero_time_throughput_is_zero_not_inf(self):
        """Empty/zero-cost batches report 0.0 qps — inf poisons any
        downstream mean and is not valid JSON."""
        stats = UpdateStats(applied=10)
        assert stats.total_ns == 0.0
        assert stats.throughput_qps() == 0.0
        assert stats.throughput_qps(include_transfer=False) == 0.0

    def test_nonzero_time_throughput(self):
        stats = UpdateStats(applied=1000, modify_ns=1e9)
        assert stats.throughput_qps() == pytest.approx(1000.0)


class TestCpuOnlyBaseline:
    def test_apply_cpu_only(self, base_data):
        keys, values = base_data
        tree = RegularCpuBPlusTree(keys, values, fill=0.7)
        upd_keys, upd_vals = make_insert_batch(keys, 100, 64, seed=61)
        n = apply_cpu_only(tree, upd_keys, upd_vals)
        assert n == 100
        tree.check_invariants()
        assert np.array_equal(tree.lookup_batch(upd_keys), upd_vals)


class TestVectorizedKeepPath:
    """The async keep-path's per-leaf batch scatter (insert_batch)."""

    def test_batch_matches_scalar_regular(self, base_data):
        keys, values = base_data
        batch_tree = RegularCpuBPlusTree(keys, values, fill=0.7)
        scalar_tree = RegularCpuBPlusTree(keys, values, fill=0.7)
        rng = np.random.default_rng(73)
        bk = rng.integers(1, 2**63, size=900, dtype=np.uint64)
        bv = bk ^ 0x55
        batch_tree.insert_batch(bk, bv)
        for k, v in zip(bk.tolist(), bv.tolist()):
            scalar_tree.insert(int(k), int(v))
        assert list(batch_tree.items()) == list(scalar_tree.items())
        batch_tree.check_invariants()

    def test_duplicate_keys_keep_last(self, base_data):
        keys, values = base_data
        tree = RegularCpuBPlusTree(keys, values, fill=0.7)
        k = int(keys[0]) + 1
        bk = np.asarray([k, k, k], dtype=np.uint64)
        bv = np.asarray([1, 2, 3], dtype=np.uint64)
        tree.insert_batch(bk, bv)
        assert tree.lookup(k) == 3
        tree.check_invariants()

    def test_async_mixed_upserts_and_deletes(self, base_data, m1):
        # a batch carrying both classes still matches the scalar replay
        keys, values = base_data
        t = HBPlusTree(keys, values, machine=m1, fill=0.7)
        ref = RegularCpuBPlusTree(keys, values, fill=0.7)
        upd_keys, upd_vals = make_insert_batch(keys, 600, 64, seed=83)
        del_keys = keys[::37]
        AsyncBatchUpdater(t).apply(upd_keys, upd_vals, deletes=del_keys)
        for k, v in zip(upd_keys.tolist(), upd_vals.tolist()):
            ref.insert(int(k), int(v))
        for k in del_keys.tolist():
            ref.delete(int(k))
        assert list(t.cpu_tree.items()) == list(ref.items())
        t.cpu_tree.check_invariants()
