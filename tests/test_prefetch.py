"""Stream prefetcher (memsim): streams hit, random traffic unaffected."""

import numpy as np
import pytest

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.memsim.allocator import PageKind
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.mainmem import MemorySystem
from repro.memsim.prefetch import StreamPrefetcher


class TestStreamPrefetcher:
    def test_sequential_stream_prefetches(self):
        cache = SetAssociativeCache(1 << 16)
        pf = StreamPrefetcher(cache, degree=2)
        pf.observe(0, 10, 1000)
        issued = pf.observe(0, 11, 1000)  # stream confirmed
        assert issued == 2
        assert cache.contains(12 * 64)
        assert cache.contains(13 * 64)

    def test_random_accesses_never_prefetch(self):
        cache = SetAssociativeCache(1 << 16)
        pf = StreamPrefetcher(cache, degree=2)
        rng = np.random.default_rng(1)
        total = sum(
            pf.observe(0, int(line), 10**6)
            for line in rng.integers(0, 10**5, size=200)
        )
        # adjacent pairs are vanishingly rare in random traffic
        assert total <= 2

    def test_stream_stops_at_segment_end(self):
        cache = SetAssociativeCache(1 << 16)
        pf = StreamPrefetcher(cache, degree=4)
        pf.observe(0, 98, 99)
        issued = pf.observe(0, 99, 99)
        assert issued == 0  # nothing beyond the segment

    def test_stream_table_eviction(self):
        cache = SetAssociativeCache(1 << 16)
        pf = StreamPrefetcher(cache, degree=1, streams=2)
        pf.observe(100, 1, 10**6)
        pf.observe(200, 1, 10**6)
        pf.observe(300, 1, 10**6)  # evicts the base-100 stream
        assert pf.observe(100, 2, 10**6) == 0  # no longer tracked

    def test_invalid_params(self):
        cache = SetAssociativeCache(1 << 16)
        with pytest.raises(ValueError):
            StreamPrefetcher(cache, degree=-1)
        with pytest.raises(ValueError):
            StreamPrefetcher(cache, streams=0)

    def test_prefetch_not_counted_as_demand_traffic(self):
        cache = SetAssociativeCache(1 << 16)
        pf = StreamPrefetcher(cache, degree=2)
        pf.observe(0, 10, 1000)
        pf.observe(0, 11, 1000)
        # two demand accesses were never issued through observe itself
        assert cache.counters.line_accesses == 0
        assert cache.counters.cache_misses == 0

    def test_reset(self):
        cache = SetAssociativeCache(1 << 16)
        pf = StreamPrefetcher(cache, degree=2)
        pf.observe(0, 10, 1000)
        pf.observe(0, 11, 1000)
        pf.reset()
        assert pf.issued == 0
        assert pf.observe(0, 12, 1000) == 0  # stream forgotten


class TestMemorySystemIntegration:
    def test_sequential_scan_mostly_hits(self):
        mem = MemorySystem(llc_bytes=1 << 16, prefetch_degree=2)
        seg = mem.allocate("scan", 1 << 14, PageKind.SMALL)
        for line in range(200):
            mem.touch_line(seg, line)
        # after the stream is established only every few lines miss
        assert mem.counters.cache_misses < 200 / 2
        assert mem.counters.prefetches > 50

    def test_disabled_prefetcher(self):
        mem = MemorySystem(llc_bytes=1 << 16, prefetch_degree=0)
        assert mem.prefetcher is None
        seg = mem.allocate("scan", 1 << 14, PageKind.SMALL)
        for line in range(100):
            mem.touch_line(seg, line)
        assert mem.counters.cache_misses == 100
        assert mem.counters.prefetches == 0

    def test_point_lookups_untouched_by_prefetcher(self, dataset64):
        """Random tree descents must not trigger streams — the
        calibrated point-query figures depend on it."""
        keys, values = dataset64
        mem = MemorySystem(llc_bytes=1 << 15, prefetch_degree=2)
        tree = ImplicitCpuBPlusTree(keys, values, mem=mem)
        rng = np.random.default_rng(3)
        for k in rng.choice(keys, size=300).tolist():
            tree.lookup(int(k))
        assert mem.counters.prefetches < 0.05 * mem.counters.line_accesses

    def test_range_scan_benefits(self, dataset64):
        keys, values = dataset64
        mem = MemorySystem(llc_bytes=1 << 15, prefetch_degree=2)
        tree = ImplicitCpuBPlusTree(keys, values, mem=mem)
        sk = np.sort(keys)
        mem.reset_counters()
        tree.range_query(int(sk[0]), int(sk[1500]))
        assert mem.counters.prefetches > 100
