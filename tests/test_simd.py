"""AVX2 emulation layer (appendix A intrinsics)."""

import pytest

from repro.cpu import simd


class TestVecReg:
    def test_set1_broadcasts_four_lanes(self):
        v = simd.mm256_set1_epi64x(42)
        assert v.lanes == (42, 42, 42, 42)
        assert v.lane_bits == 64

    def test_set_epi64x_orders_msb_first(self):
        v = simd.mm256_set_epi64x(3, 2, 1, 0)
        assert v.lanes == (3, 2, 1, 0)

    def test_mm_set1_two_lanes(self):
        v = simd.mm_set1_epi64x(9)
        assert len(v) == 2

    def test_set1_epi32_eight_lanes(self):
        v = simd.mm256_set1_epi32(5)
        assert len(v) == 8
        assert v.lane_bits == 32

    def test_width_bits(self):
        assert simd.mm256_set1_epi64x(0).width_bits == 256
        assert simd.mm_set1_epi64x(0).width_bits == 128

    def test_lane_range_validated(self):
        with pytest.raises(ValueError):
            simd.VecReg(lanes=(2**64,), lane_bits=64)
        with pytest.raises(ValueError):
            simd.VecReg(lanes=(-1,), lane_bits=64)

    def test_set_epi32_requires_eight(self):
        with pytest.raises(ValueError):
            simd.mm256_set_epi32(1, 2, 3)


class TestCmpgt:
    def test_unsigned_greater_than(self):
        a = simd.mm256_set_epi64x(10, 10, 10, 10)
        b = simd.mm256_set_epi64x(5, 10, 15, 2**63)
        r = simd.cmpgt(a, b)
        ones = 2**64 - 1
        assert r.lanes == (ones, 0, 0, 0)

    def test_full_unsigned_domain(self):
        # 2**63 > 1 must hold in unsigned comparison (the hardware's
        # signed cmpgt would get this wrong without the sign flip)
        a = simd.mm_set1_epi64x(2**63)
        b = simd.mm_set1_epi64x(1)
        r = simd.cmpgt(a, b)
        assert all(lane for lane in r.lanes)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simd.cmpgt(simd.mm256_set1_epi64x(1), simd.mm_set1_epi64x(1))


class TestMovemask:
    def test_all_ones_register(self):
        ones = 2**64 - 1
        v = simd.VecReg(lanes=(ones, ones, ones, ones), lane_bits=64)
        assert simd.movemask_epi8(v) == 0xFFFFFFFF

    def test_all_zero_register(self):
        v = simd.mm256_set1_epi64x(0)
        assert simd.movemask_epi8(v) == 0

    def test_snippet1_mask_counts_lanes(self):
        # Snippet 1: (movemask & 0x10101010) popcount == true lane count
        ones = 2**64 - 1
        for true_lanes in range(5):
            lanes = tuple(
                ones if i < true_lanes else 0 for i in range(4)
            )
            v = simd.VecReg(lanes=lanes, lane_bits=64)
            masked = simd.movemask_epi8(v) & 0x10101010
            assert simd.popcount(masked) == true_lanes

    def test_snippet2_mask_counts_128bit_lanes(self):
        ones = 2**64 - 1
        v = simd.VecReg(lanes=(ones, 0), lane_bits=64)
        masked = simd.movemask_epi8(v) & 0x00001010
        assert simd.popcount(masked) == 1

    def test_mask_bit_positions_lsb_lane_first(self):
        ones = 2**64 - 1
        v = simd.VecReg(lanes=(0, ones), lane_bits=64)  # low lane set
        mask = simd.movemask_epi8(v)
        assert mask == 0x000000FF


class TestPopcount:
    @pytest.mark.parametrize("x,expected", [
        (0, 0), (1, 1), (0xFF, 8), (0x10101010, 4), (2**32 - 1, 32),
    ])
    def test_values(self, x, expected):
        assert simd.popcount(x) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            simd.popcount(-1)


class TestHelpers:
    def test_count_true_lanes(self):
        ones = 2**32 - 1
        v = simd.VecReg(lanes=(ones, 0, ones, 0, 0, 0, ones, 0),
                        lane_bits=32)
        assert simd.count_true_lanes(v) == 3

    def test_load_lanes_lowest_first(self):
        v = simd.load_lanes([1, 2, 3, 4], 64)
        # memory order [1,2,3,4] -> lanes MSB-first (4,3,2,1)
        assert v.lanes == (4, 3, 2, 1)
