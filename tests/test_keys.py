"""Key-type constants (section 4.1 / 5.2 fanout table)."""

import numpy as np
import pytest

from repro.keys import KEY32, KEY64, key_spec


class TestKeySpec64:
    def test_size_bytes(self):
        assert KEY64.size_bytes == 8

    def test_max_value_is_sentinel(self):
        assert KEY64.max_value == 2**64 - 1

    def test_keys_per_line(self):
        assert KEY64.keys_per_line == 8

    def test_leaf_pairs_per_line_is_p_l(self):
        # P_L = 4 for 64-bit keys (section 4.1)
        assert KEY64.leaf_pairs_per_line == 4

    def test_implicit_cpu_fanout(self):
        assert KEY64.implicit_cpu_fanout == 9

    def test_implicit_hybrid_fanout(self):
        assert KEY64.implicit_hybrid_fanout == 8

    def test_regular_fanout(self):
        assert KEY64.regular_fanout == 64

    def test_gpu_threads_per_query(self):
        # T = 8 for the 64-bit implementation (section 5.3)
        assert KEY64.gpu_threads_per_query == 8

    def test_dtype(self):
        assert KEY64.dtype is np.uint64


class TestKeySpec32:
    def test_keys_per_line(self):
        assert KEY32.keys_per_line == 16

    def test_leaf_pairs_per_line(self):
        # capacity of each leaf cache line increases to 8 (section 4.1)
        assert KEY32.leaf_pairs_per_line == 8

    def test_implicit_cpu_fanout(self):
        assert KEY32.implicit_cpu_fanout == 17

    def test_implicit_hybrid_fanout(self):
        assert KEY32.implicit_hybrid_fanout == 16

    def test_regular_fanout(self):
        assert KEY32.regular_fanout == 256

    def test_gpu_threads_per_query(self):
        assert KEY32.gpu_threads_per_query == 16

    def test_max_value(self):
        assert KEY32.max_value == 2**32 - 1


class TestKeySpecLookup:
    def test_key_spec_64(self):
        assert key_spec(64) is KEY64

    def test_key_spec_32(self):
        assert key_spec(32) is KEY32

    def test_key_spec_rejects_other_widths(self):
        with pytest.raises(ValueError):
            key_spec(16)

    def test_as_key_array_dtype(self):
        arr = KEY64.as_key_array([1, 2, 3])
        assert arr.dtype == np.uint64


class TestCoerce:
    def test_passthrough_no_copy(self):
        arr = np.array([1, 2, 3], dtype=np.uint64)
        assert KEY64.coerce(arr) is arr

    def test_python_int_list(self):
        out = KEY64.coerce([1, 2, 3])
        assert out.dtype == np.uint64
        assert out.tolist() == [1, 2, 3]

    def test_python_ints_above_int64_stay_exact(self):
        # NumPy turns a list of ints in [2**63, 2**64) into float64;
        # coerce must recover the exact values
        big = [2**64 - 2, 2**63 + 1, 5]
        assert KEY64.coerce(big).tolist() == big

    def test_any_integer_dtype_accepted(self):
        for dt in (np.int8, np.uint16, np.int32, np.int64):
            out = KEY64.coerce(np.array([7, 9], dtype=dt))
            assert out.dtype == np.uint64
            assert out.tolist() == [7, 9]

    def test_negative_raises_overflow(self):
        with pytest.raises(OverflowError):
            KEY64.coerce([-1])
        with pytest.raises(OverflowError):
            KEY64.coerce(np.array([-5], dtype=np.int32))

    def test_too_large_raises_overflow(self):
        with pytest.raises(OverflowError):
            KEY64.coerce([2**64])
        with pytest.raises(OverflowError):
            KEY32.coerce([2**32])

    def test_float_raises_type_error(self):
        with pytest.raises(TypeError):
            KEY64.coerce([1.5])
        with pytest.raises(TypeError):
            KEY64.coerce(np.array([1.0, 2.0]))

    def test_non_numeric_raises_type_error(self):
        with pytest.raises(TypeError):
            KEY64.coerce(["a"])

    def test_32bit_range(self):
        out = KEY32.coerce([2**32 - 1])
        assert out.dtype == np.uint32
        assert int(out[0]) == 2**32 - 1

    def test_empty_list(self):
        out = KEY64.coerce([])
        assert out.dtype == np.uint64 and out.size == 0


class TestBoolRejection:
    """bool subclasses int, but a boolean is never a key.

    ``operator.index(True) == 1``, so without an explicit check bools
    silently coerce to 0/1 keys; :meth:`KeySpec.coerce` rejects them on
    every input path (scalar, list, numpy array, object fallback).
    """

    def test_scalar_bool_raises(self):
        with pytest.raises(TypeError, match="boolean"):
            KEY64.coerce(True)
        with pytest.raises(TypeError, match="boolean"):
            KEY64.coerce(False)

    def test_numpy_bool_scalar_raises(self):
        with pytest.raises(TypeError, match="boolean"):
            KEY64.coerce(np.bool_(True))

    def test_list_of_bools_raises(self):
        with pytest.raises(TypeError, match="boolean"):
            KEY64.coerce([True, False, True])
        with pytest.raises(TypeError, match="boolean"):
            KEY32.coerce([False])

    def test_numpy_bool_array_raises(self):
        with pytest.raises(TypeError, match="boolean"):
            KEY64.coerce(np.array([True, False]))
        with pytest.raises(TypeError, match="boolean"):
            KEY32.coerce(np.zeros(4, dtype=np.bool_))

    def test_bool_on_object_path_raises(self):
        # object arrays take the operator.index fallback; a stray bool
        # must be caught there before operator.index accepts it.  (A
        # plain mixed list like [2**63, True] is out of scope: numpy
        # promotes it to uint64 before coerce can see the bool.)
        with pytest.raises(TypeError, match="boolean"):
            KEY64.coerce(np.array([2**63, True], dtype=object))
        with pytest.raises(TypeError, match="boolean"):
            KEY64.coerce(np.array([np.bool_(False)], dtype=object))

    def test_zero_one_ints_still_pass(self):
        out = KEY64.coerce([0, 1])
        assert out.dtype == np.uint64
        assert out.tolist() == [0, 1]
