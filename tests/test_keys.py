"""Key-type constants (section 4.1 / 5.2 fanout table)."""

import numpy as np
import pytest

from repro.keys import KEY32, KEY64, key_spec


class TestKeySpec64:
    def test_size_bytes(self):
        assert KEY64.size_bytes == 8

    def test_max_value_is_sentinel(self):
        assert KEY64.max_value == 2**64 - 1

    def test_keys_per_line(self):
        assert KEY64.keys_per_line == 8

    def test_leaf_pairs_per_line_is_p_l(self):
        # P_L = 4 for 64-bit keys (section 4.1)
        assert KEY64.leaf_pairs_per_line == 4

    def test_implicit_cpu_fanout(self):
        assert KEY64.implicit_cpu_fanout == 9

    def test_implicit_hybrid_fanout(self):
        assert KEY64.implicit_hybrid_fanout == 8

    def test_regular_fanout(self):
        assert KEY64.regular_fanout == 64

    def test_gpu_threads_per_query(self):
        # T = 8 for the 64-bit implementation (section 5.3)
        assert KEY64.gpu_threads_per_query == 8

    def test_dtype(self):
        assert KEY64.dtype is np.uint64


class TestKeySpec32:
    def test_keys_per_line(self):
        assert KEY32.keys_per_line == 16

    def test_leaf_pairs_per_line(self):
        # capacity of each leaf cache line increases to 8 (section 4.1)
        assert KEY32.leaf_pairs_per_line == 8

    def test_implicit_cpu_fanout(self):
        assert KEY32.implicit_cpu_fanout == 17

    def test_implicit_hybrid_fanout(self):
        assert KEY32.implicit_hybrid_fanout == 16

    def test_regular_fanout(self):
        assert KEY32.regular_fanout == 256

    def test_gpu_threads_per_query(self):
        assert KEY32.gpu_threads_per_query == 16

    def test_max_value(self):
        assert KEY32.max_value == 2**32 - 1


class TestKeySpecLookup:
    def test_key_spec_64(self):
        assert key_spec(64) is KEY64

    def test_key_spec_32(self):
        assert key_spec(32) is KEY32

    def test_key_spec_rejects_other_widths(self):
        with pytest.raises(ValueError):
            key_spec(16)

    def test_as_key_array_dtype(self):
        arr = KEY64.as_key_array([1, 2, 3])
        assert arr.dtype == np.uint64
