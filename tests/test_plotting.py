"""ASCII chart rendering for experiment tables."""

import pytest

from repro.bench.harness import ExperimentTable
from repro.bench.plotting import bar_chart, series_chart


@pytest.fixture()
def table():
    t = ExperimentTable("t", "d")
    for n, tree, mqps in [
        (1, "a", 10.0), (2, "a", 20.0), (4, "a", 30.0),
        (1, "b", 5.0), (2, "b", 12.0), (4, "b", 40.0),
    ]:
        t.add(n=n, tree=tree, mqps=mqps)
    return t


class TestBarChart:
    def test_renders_all_rows(self, table):
        out = bar_chart(table, "tree", "mqps", n=2)
        assert "a |" in out and "b |" in out
        assert "20" in out and "12" in out

    def test_bars_proportional(self, table):
        out = bar_chart(table, "n", "mqps", tree="a", width=30)
        lines = [l for l in out.splitlines() if "|" in l]
        lengths = [l.count("#") for l in lines]
        assert lengths == sorted(lengths)
        assert lengths[-1] == 30

    def test_empty_selection(self, table):
        assert bar_chart(table, "tree", "mqps", n=99) == "(no data)"

    def test_zero_values_render(self):
        t = ExperimentTable("z", "d")
        t.add(k="x", v=0.0)
        out = bar_chart(t, "k", "v")
        assert "x |" in out


class TestSeriesChart:
    def test_contains_glyphs_and_legend(self, table):
        out = series_chart(table, "n", "mqps", series_col="tree")
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_axis_labels(self, table):
        out = series_chart(table, "n", "mqps", series_col="tree")
        assert "1 .. 4" in out
        assert "40" in out  # y max

    def test_single_series(self, table):
        out = series_chart(table, "n", "mqps")
        assert "mqps over n" in out

    def test_single_point(self):
        t = ExperimentTable("p", "d")
        t.add(x=5, y=7.0)
        out = series_chart(t, "x", "y")
        assert "o" in out

    def test_single_point_is_centered(self):
        # regression: a single-x series must not divide by len(xs)-1;
        # the point renders centered on the x axis instead
        t = ExperimentTable("p", "d")
        t.add(x=5, y=7.0)
        width = 40
        out = series_chart(t, "x", "y", width=width)
        top = out.splitlines()[1]  # y == y_max -> top grid row
        grid = top.split("+", 1)[1]
        assert grid.index("o") == width // 2
        assert "5 .. 5" in out

    def test_single_point_with_series_col(self):
        t = ExperimentTable("p", "d")
        t.add(x=3, y=1.0, tree="a")
        out = series_chart(t, "x", "y", series_col="tree")
        assert "o=a" in out

    def test_empty(self):
        t = ExperimentTable("e", "d")
        assert series_chart(t, "x", "y") == "(no data)"

    def test_monotone_series_slopes_up(self, table):
        """Higher y values appear on higher rows of the grid."""
        out = series_chart(table, "n", "mqps", series_col="tree",
                           height=12, width=30)
        rows = out.splitlines()[1:13]
        first_glyph_row = next(
            i for i, row in enumerate(rows) if "x" in row or "o" in row
        )
        last_glyph_row = max(
            i for i, row in enumerate(rows) if "x" in row or "o" in row
        )
        assert first_glyph_row < last_glyph_row
