"""Logical-thread scheduler and lock table."""

import pytest

from repro.concurrency import LockTable, Operation, ThreadScheduler


class TestLockTable:
    def test_uncontended_grant_is_immediate(self):
        locks = LockTable()
        assert locks.acquire("a", now=100.0, hold_ns=50.0) == 100.0
        assert locks.stats.contended_acquisitions == 0

    def test_contended_grant_waits(self):
        locks = LockTable()
        locks.acquire("a", now=0.0, hold_ns=100.0)
        granted = locks.acquire("a", now=40.0, hold_ns=10.0)
        assert granted == 100.0
        assert locks.stats.contended_acquisitions == 1
        assert locks.stats.total_wait_ns == pytest.approx(60.0)

    def test_distinct_resources_independent(self):
        locks = LockTable()
        locks.acquire("a", now=0.0, hold_ns=100.0)
        assert locks.acquire("b", now=10.0, hold_ns=10.0) == 10.0

    def test_chain_of_waiters(self):
        locks = LockTable()
        g1 = locks.acquire("a", 0.0, 100.0)
        g2 = locks.acquire("a", 0.0, 100.0)
        g3 = locks.acquire("a", 0.0, 100.0)
        assert (g1, g2, g3) == (0.0, 100.0, 200.0)

    def test_available_at_and_holder(self):
        locks = LockTable()
        locks.acquire("a", 5.0, 20.0, holder=3)
        assert locks.available_at("a") == 25.0
        assert locks.holder_of("a") == 3
        assert locks.available_at("zzz") == 0.0

    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            LockTable().acquire("a", 0.0, -1.0)

    def test_reset(self):
        locks = LockTable()
        locks.acquire("a", 0.0, 100.0)
        locks.reset()
        assert locks.stats.acquisitions == 0
        assert locks.acquire("a", 0.0, 1.0) == 0.0

    def test_contention_rate(self):
        locks = LockTable()
        locks.acquire("a", 0.0, 100.0)
        locks.acquire("a", 0.0, 100.0)
        assert locks.stats.contention_rate == pytest.approx(0.5)


class TestScheduler:
    def test_lock_free_work_scales_linearly(self):
        ops = [Operation(work_ns=100.0) for _ in range(64)]
        r1 = ThreadScheduler(1).run(ops)
        r8 = ThreadScheduler(8).run(ops)
        assert r1.makespan_ns == pytest.approx(6400.0)
        assert r8.makespan_ns == pytest.approx(800.0)
        assert r8.parallel_speedup == pytest.approx(8.0)

    def test_single_hot_lock_serializes(self):
        """All updates on one leaf: the locked phases serialize no
        matter how many threads."""
        ops = [Operation(work_ns=10.0, lock="leaf0", locked_ns=90.0)
               for _ in range(32)]
        r = ThreadScheduler(16).run(ops)
        assert r.makespan_ns >= 32 * 90.0
        assert r.lock_stats.contended_acquisitions > 0

    def test_distinct_locks_parallelize(self):
        ops = [Operation(work_ns=10.0, lock=f"leaf{i}", locked_ns=90.0)
               for i in range(32)]
        r = ThreadScheduler(16).run(ops)
        assert r.makespan_ns < 32 * 100.0 / 4
        assert r.lock_stats.contended_acquisitions == 0

    def test_empty_operation_list(self):
        r = ThreadScheduler(4).run([])
        assert r.makespan_ns == 0.0
        assert r.operations == 0

    def test_tags_counted(self):
        ops = [Operation(10.0, tag="search")] * 3 + [
            Operation(10.0, tag="update")
        ]
        r = ThreadScheduler(2).run(ops)
        assert r.per_tag_count == {"search": 3, "update": 1}

    def test_utilization_bounded(self):
        ops = [Operation(work_ns=50.0, lock="x", locked_ns=50.0)
               for _ in range(16)]
        r = ThreadScheduler(8).run(ops)
        assert 0.0 < r.utilization <= 1.0

    def test_throughput(self):
        ops = [Operation(work_ns=100.0)] * 10
        r = ThreadScheduler(1).run(ops)
        assert r.throughput_ops == pytest.approx(1e9 / 100.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ThreadScheduler(0)
        with pytest.raises(ValueError):
            Operation(work_ns=-1.0)

    def test_least_loaded_dealing(self):
        """A long op on one thread must not delay short ops."""
        ops = [Operation(work_ns=1000.0)] + [
            Operation(work_ns=10.0) for _ in range(10)
        ]
        r = ThreadScheduler(2).run(ops)
        # short ops all fit on the second thread while the first works
        assert r.makespan_ns == pytest.approx(1000.0)


class TestLockStatsLifecycle:
    def test_copy_is_detached(self):
        locks = LockTable()
        locks.acquire("a", 0.0, 100.0)
        snap = locks.stats.copy()
        locks.acquire("a", 0.0, 100.0)
        assert snap.acquisitions == 1
        assert locks.stats.acquisitions == 2

    def test_reset_zeroes(self):
        locks = LockTable()
        locks.acquire("a", 0.0, 100.0)
        locks.acquire("a", 0.0, 100.0)
        locks.stats.reset()
        assert locks.stats.acquisitions == 0
        assert locks.stats.contended_acquisitions == 0
        assert locks.stats.total_wait_ns == 0.0

    def test_schedule_result_stats_survive_table_reuse(self):
        """ScheduleResult.lock_stats must be a snapshot, not an alias."""
        sched = ThreadScheduler(threads=2)
        ops = [Operation(work_ns=10.0, lock="x", locked_ns=50.0)
               for _ in range(4)]
        first = sched.run(ops)
        acquisitions = first.lock_stats.acquisitions
        sched.run(ops)  # a second run must not mutate the first result
        assert first.lock_stats.acquisitions == acquisitions
