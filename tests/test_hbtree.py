"""Hybrid trees: segment placement, search path, mirrors, costs."""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.memsim.allocator import PageKind
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(3000, seed=21)


@pytest.fixture()
def hbi(data, m1):
    keys, values = data
    return ImplicitHBPlusTree(keys, values, machine=m1)


@pytest.fixture()
def hbr(data, m1):
    keys, values = data
    return HBPlusTree(keys, values, machine=m1)


class TestImplicitHybrid:
    def test_lookup_batch_correct(self, hbi, data):
        keys, values = data
        assert np.array_equal(hbi.lookup_batch(keys), values)

    def test_scalar_lookup(self, hbi, data):
        keys, values = data
        assert hbi.lookup(int(keys[0])) == int(values[0])
        assert hbi.lookup(int(keys.max()) + 3) is None

    def test_hybrid_equals_cpu_only_search(self, hbi, data):
        """The heterogeneous path and the CPU-only path must agree."""
        keys, _values = data
        hybrid = hbi.lookup_batch(keys[:512])
        cpu = hbi.cpu_tree.lookup_batch(keys[:512])
        assert np.array_equal(hybrid, cpu)

    def test_fanout_is_hybrid_fanout(self, hbi):
        assert hbi.cpu_tree.fanout == 8

    def test_i_segment_mirrored_to_device(self, hbi):
        assert "iseg" in hbi.device.memory
        total_inner = sum(hbi.level_sizes)
        assert hbi.iseg_buffer.array.size == total_inner

    def test_mirror_matches_cpu_levels(self, hbi):
        flat = hbi.iseg_buffer.array
        for level, (off, size) in enumerate(
            zip(hbi.level_offsets, hbi.level_sizes)
        ):
            cpu_level = hbi.cpu_tree.inner_levels[level].reshape(-1)
            assert np.array_equal(flat[off: off + size], cpu_level)

    def test_l_segment_stays_on_cpu(self, hbi):
        # leaves live in CPU memory only (Fig 4)
        assert hbi.cpu_tree.l_segment is not None
        assert hbi.l_segment_bytes == hbi.cpu_tree.num_leaves * 64

    def test_transfer_stats_recorded(self, hbi):
        assert hbi.link.stats.transfers >= 1
        assert hbi.link.stats.bytes_to_device >= hbi.i_segment_bytes

    def test_range_query(self, hbi, data):
        keys, _values = data
        sk = np.sort(keys)
        got = hbi.range_query(int(sk[5]), int(sk[25]))
        assert len(got) == 21

    def test_len_and_contains(self, hbi, data):
        keys, _values = data
        assert len(hbi) == len(keys)
        assert int(keys[0]) in hbi

    def test_rebuild_times_and_correctness(self, hbi):
        nk, nv = generate_dataset(2000, seed=77)
        times = hbi.rebuild(nk, nv)
        assert np.array_equal(hbi.lookup_batch(nk), nv)
        assert times.l_segment_ns > times.i_segment_ns
        assert times.transfer_ns > 0

    def test_rebuild_transfer_fraction_small_for_big_trees(self, m1):
        """Paper Fig 15: I-segment transfer is a small share (3-7%) of
        the reconstruction cost once T_init amortizes."""
        nk, nv = generate_dataset(65536, seed=78)
        tree = ImplicitHBPlusTree(nk[:100], nv[:100], machine=m1)
        times = tree.rebuild(nk, nv)
        assert times.transfer_fraction < 0.15

    def test_bucket_costs_positive(self, hbi):
        costs = hbi.bucket_costs(8192)
        for t in (costs.t1, costs.t2, costs.t3, costs.t4):
            assert t > 0

    def test_bucket_cost_ordering(self, hbi):
        """Strategy closed forms: sequential >= pipelined >= max(T2,T4)."""
        c = hbi.bucket_costs(16384)
        assert c.sequential >= c.pipelined >= max(c.t2, c.t4)


class TestRegularHybrid:
    def test_lookup_batch_correct(self, hbr, data):
        keys, values = data
        assert np.array_equal(hbr.lookup_batch(keys), values)

    def test_hybrid_equals_cpu_only_search(self, hbr, data):
        keys, _values = data
        hybrid = hbr.lookup_batch(keys[:512])
        cpu = hbr.cpu_tree.lookup_batch(keys[:512])
        assert np.array_equal(hybrid, cpu)

    def test_node_stride_is_17_lines(self, hbr):
        assert hbr.node_stride * 8 == 17 * 64

    def test_mirror_pins_last_used_key(self, hbr):
        """Device copies pin key[size-1] to MAX (section 5.3)."""
        stride = hbr.node_stride
        kpl = hbr.spec.keys_per_line
        flat = hbr.iseg_buffer.array
        for node in range(hbr.cpu_tree.last.count):
            slot = hbr.last_base + node
            keys = flat[slot * stride + kpl: slot * stride + kpl + 64]
            size = max(1, int(hbr.cpu_tree.last.size[node]))
            assert keys[size - 1] == hbr.spec.max_value

    def test_sync_node_updates_mirror(self, hbr, data):
        keys, _values = data
        # mutate one leaf's keys via an insert that fits in place
        new_key = int(keys.max()) + 1
        hbr.cpu_tree.insert(new_key, 42)
        node, _line, _path = hbr.cpu_tree._descend(new_key, instrument=False)
        hbr.sync_node(0, node)
        assert hbr.lookup(new_key) == 42

    def test_stale_mirror_detected_by_lookup(self, hbr, data):
        """Without a sync, the GPU mirror cannot see a new key whose
        routing changed — proving the mirror is really consulted."""
        keys, _values = data
        probe = int(keys.max()) + 1000
        hbr.cpu_tree.insert(probe, 7)
        # CPU-only search sees it...
        assert hbr.cpu_tree.lookup(probe, instrument=False) == 7
        # ...and after the mirror refresh so does the hybrid path
        hbr.mirror_i_segment()
        assert hbr.lookup(probe) == 7

    def test_bucket_costs(self, hbr):
        costs = hbr.bucket_costs(8192)
        assert costs.t2 > 0 and costs.t4 > 0

    def test_machine_required(self, data):
        keys, values = data
        with pytest.raises(ValueError):
            HBPlusTree(keys, values, machine=None)


class TestDeviceCapacity:
    def test_iseg_must_fit_device_memory(self, data, m1):
        """Mirroring fails once the I-segment exceeds GPU memory — the
        capacity wall the paper's design accepts for the I-segment
        (while the far bigger L-segment stays in host memory)."""
        keys, values = data
        tiny_gpu = m1.with_gpu(device_mem_bytes=1024)
        with pytest.raises(MemoryError):
            ImplicitHBPlusTree(keys, values, machine=tiny_gpu)

    def test_l_segment_larger_than_i_segment(self, hbi):
        """The rationale for the split (section 5.2): leaves need more
        space than inner nodes."""
        assert hbi.l_segment_bytes > hbi.i_segment_bytes
