"""Seeded large-scale stress tests (the slow, thorough tier).

These complement the hypothesis properties with bigger, longer op
sequences that historically surface interaction bugs (splits + deletes
+ precision + replay).
"""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.validate import validate_index
from repro.workloads.generators import generate_dataset
from repro.workloads.trace import replay_trace, synthesize_trace


class TestRegularTreeStress:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_long_mixed_op_sequence_vs_dict(self, seed):
        rng = np.random.default_rng(seed)
        tree = RegularCpuBPlusTree()
        model = {}
        # keys drawn from a small domain to force heavy overwrite /
        # delete / reinsert churn within the same leaves
        domain = 2_000
        for step in range(6_000):
            key = int(rng.integers(0, domain))
            action = rng.random()
            if action < 0.6:
                value = int(rng.integers(0, 10**6))
                tree.insert(key, value)
                model[key] = value
            elif action < 0.9:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
            else:
                assert tree.lookup(key, instrument=False) == model.get(key)
        tree.check_invariants()
        assert dict(tree.items()) == model

    def test_adversarial_high_bit_churn(self):
        """Large keys (beyond float64 precision) under churn."""
        rng = np.random.default_rng(7)
        base = (1 << 62) + 1
        tree = RegularCpuBPlusTree()
        model = {}
        for step in range(4_000):
            key = base + int(rng.integers(0, 3_000))
            if rng.random() < 0.7:
                tree.insert(key, step)
                model[key] = step
            else:
                tree.delete(key)
                model.pop(key, None)
        tree.check_invariants()
        assert dict(tree.items()) == model

    def test_packed_tree_insert_storm(self):
        """Bulk-built at 100% fill, then a split storm."""
        keys, values = generate_dataset(1 << 14, seed=31)
        tree = RegularCpuBPlusTree(keys, values, fill=1.0)
        rng = np.random.default_rng(32)
        fresh = rng.choice(2**62, size=3_000, replace=False)
        existing = set(keys.tolist())
        for k in fresh.tolist():
            if int(k) not in existing:
                tree.insert(int(k), 1)
        tree.check_invariants()

    def test_grow_then_shrink_to_empty_and_back(self):
        tree = RegularCpuBPlusTree()
        n = 20_000
        for k in range(n):
            tree.insert(k, k)
        assert tree.height >= 2
        for k in range(n):
            assert tree.delete(k)
        assert len(tree) == 0
        tree.check_invariants()
        for k in range(500):
            tree.insert(k, k + 1)
        tree.check_invariants()
        assert tree.lookup(250) == 251


class TestTraceStress:
    @pytest.mark.parametrize("seed", [11, 12])
    def test_long_replay_on_packed_hybrid(self, seed, m1):
        """The operations-playbook failure mode, at scale: a packed
        hybrid tree surviving a long drifting trace."""
        keys, values = generate_dataset(1 << 14, seed=seed)
        tree = HBPlusTree(keys, values, machine=m1, fill=1.0)
        trace = synthesize_trace(keys, 6_000, read_ratio=0.6,
                                 working_set=0.05, drift_every=500,
                                 seed=seed)
        stats = replay_trace(trace, tree)
        assert stats.operations == len(trace)
        validate_index(tree)
