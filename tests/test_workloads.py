"""Workload generators (section 6.1, Fig 12 distributions)."""

import numpy as np
import pytest

from repro.keys import KEY32, KEY64
from repro.workloads.generators import (
    DISTRIBUTIONS,
    generate_dataset,
    generate_skewed_queries,
    knuth_shuffle,
)
from repro.workloads.queries import (
    make_insert_batch,
    make_point_queries,
    make_range_queries,
    make_update_mix,
)


class TestGenerateDataset:
    def test_size_and_uniqueness(self):
        keys, values = generate_dataset(5000)
        assert len(keys) == len(values) == 5000
        assert len(np.unique(keys)) == 5000

    def test_keys_below_sentinel(self):
        keys, _v = generate_dataset(1000)
        assert int(keys.max()) < KEY64.max_value

    def test_dtype_64(self):
        keys, values = generate_dataset(100)
        assert keys.dtype == np.uint64
        assert values.dtype == np.uint64

    def test_dtype_32(self):
        keys, values = generate_dataset(100, key_bits=32)
        assert keys.dtype == np.uint32
        assert int(keys.max()) < KEY32.max_value

    def test_deterministic_per_seed(self):
        a, _ = generate_dataset(100, seed=5)
        b, _ = generate_dataset(100, seed=5)
        c, _ = generate_dataset(100, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_dataset(0)

    def test_roughly_uniform(self):
        keys, _v = generate_dataset(20000)
        # median near the domain middle (loose check)
        mid = KEY64.max_value // 2
        med = int(np.median(keys))
        assert 0.4 * mid < med < 1.6 * mid


class TestKnuthShuffle:
    def test_is_permutation(self):
        arr = np.arange(500)
        out = knuth_shuffle(arr)
        assert sorted(out.tolist()) == arr.tolist()

    def test_does_not_mutate_input(self):
        arr = np.arange(100)
        knuth_shuffle(arr)
        assert np.array_equal(arr, np.arange(100))

    def test_actually_shuffles(self):
        arr = np.arange(500)
        out = knuth_shuffle(arr)
        assert not np.array_equal(out, arr)

    def test_deterministic(self):
        arr = np.arange(100)
        assert np.array_equal(knuth_shuffle(arr, seed=3),
                              knuth_shuffle(arr, seed=3))


class TestSkewedQueries:
    @pytest.mark.parametrize("dist", sorted(DISTRIBUTIONS))
    def test_within_domain(self, dist):
        q = generate_skewed_queries(dist, 2000)
        assert q.dtype == np.uint64
        assert int(q.max()) < KEY64.max_value

    def test_zipf_heavily_skewed(self):
        q = generate_skewed_queries("zipf", 5000).astype(np.float64)
        u = generate_skewed_queries("uniform", 5000).astype(np.float64)
        # Zipf mass concentrates near the bottom of the domain
        assert np.median(q) < np.median(u) / 4

    def test_normal_centered(self):
        q = generate_skewed_queries("normal", 5000).astype(np.float64)
        center = float(KEY64.max_value) / 2
        assert abs(np.mean(q) - center) < 0.15 * float(KEY64.max_value)

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate_skewed_queries("cauchy", 10)

    def test_32bit(self):
        q = generate_skewed_queries("gamma", 100, key_bits=32)
        assert q.dtype == np.uint32


class TestPointQueries:
    def test_queries_drawn_from_keys(self):
        keys, _v = generate_dataset(2000)
        q = make_point_queries(keys, 500)
        assert set(q.tolist()) <= set(keys.tolist())

    def test_wraps_when_longer_than_dataset(self):
        keys, _v = generate_dataset(100)
        q = make_point_queries(keys, 250)
        assert len(q) == 250

    def test_large_dataset_sampled(self):
        keys, _v = generate_dataset(50_000)
        q = make_point_queries(keys, 100)
        assert len(q) == 100
        assert set(q.tolist()) <= set(keys.tolist())


class TestRangeQueries:
    def test_window_matches_count(self):
        keys, _v = generate_dataset(2000)
        sk = np.sort(keys)
        ranges = make_range_queries(keys, 50, 8)
        lookup = sk.tolist()
        for lo, hi in ranges:
            inside = [k for k in lookup if lo <= k <= hi]
            assert len(inside) == 8

    def test_single_match(self):
        keys, _v = generate_dataset(500)
        for lo, hi in make_range_queries(keys, 20, 1):
            assert lo == hi

    def test_invalid_matches(self):
        keys, _v = generate_dataset(100)
        with pytest.raises(ValueError):
            make_range_queries(keys, 5, 0)
        with pytest.raises(ValueError):
            make_range_queries(keys, 5, 200)


class TestInsertBatch:
    def test_disjoint_from_existing(self):
        keys, _v = generate_dataset(3000)
        nk, nv = make_insert_batch(keys, 500)
        assert len(nk) == len(nv) == 500
        assert not set(nk.tolist()) & set(keys.tolist())
        assert len(np.unique(nk)) == 500


class TestUpdateMix:
    def test_ratio(self):
        keys, _v = generate_dataset(2000)
        mix = make_update_mix(keys, 1000, 0.25)
        assert len(mix) == 1000
        assert mix.update_ratio == pytest.approx(0.25, abs=0.01)
        assert len(mix.update_keys) == 250
        assert len(mix.search_keys) == 750

    def test_pure_search(self):
        keys, _v = generate_dataset(500)
        mix = make_update_mix(keys, 100, 0.0)
        assert len(mix.update_keys) == 0
        assert mix.update_ratio == 0.0

    def test_pure_update(self):
        keys, _v = generate_dataset(500)
        mix = make_update_mix(keys, 100, 1.0)
        assert len(mix.update_keys) == 100

    def test_invalid_ratio(self):
        keys, _v = generate_dataset(100)
        with pytest.raises(ValueError):
            make_update_mix(keys, 10, 1.5)
