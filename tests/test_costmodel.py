"""Analytic cost model (T1-T4 assembly and CPU/GPU stage times)."""

import pytest

from repro.cpu.node_search import NodeSearchAlgorithm
from repro.keys import KEY64
from repro.memsim.metrics import AccessCounters
from repro.platform.costmodel import (
    BucketCosts,
    CpuCostModel,
    CpuQueryProfile,
    GpuCostModel,
    hybrid_bucket_costs,
)

PROFILE = CpuQueryProfile(
    lines=7.0, misses=3.0, tlb_small=0.8, tlb_huge=0.0, node_searches=7.0
)
LEAF_PROFILE = CpuQueryProfile(
    lines=1.0, misses=0.9, tlb_small=0.9, tlb_huge=0.0, node_searches=1.0
)


class TestCpuCostModel:
    def test_compute_grows_with_node_searches(self, m1):
        model = CpuCostModel(m1.cpu)
        small = CpuQueryProfile(1, 0, 0, 0, node_searches=1)
        big = CpuQueryProfile(1, 0, 0, 0, node_searches=10)
        assert model.compute_ns(big) > model.compute_ns(small)

    def test_memory_grows_with_misses(self, m1):
        model = CpuCostModel(m1.cpu)
        low = CpuQueryProfile(7, 1, 0, 0, 7)
        high = CpuQueryProfile(7, 5, 0, 0, 7)
        assert model.memory_ns(high) > model.memory_ns(low)

    def test_pipeline_overlaps_memory(self, m1):
        no_swp = CpuCostModel(m1.cpu, pipeline_len=1)
        swp = CpuCostModel(m1.cpu, pipeline_len=16)
        assert swp.query_ns(PROFILE) < no_swp.query_ns(PROFILE)

    def test_swp_gain_saturates(self, m1):
        q16 = CpuCostModel(m1.cpu, pipeline_len=16).query_ns(PROFILE)
        q32 = CpuCostModel(m1.cpu, pipeline_len=32).query_ns(PROFILE)
        assert q32 == pytest.approx(q16)

    def test_swp_gain_in_paper_band(self, m1):
        """Fig 20: ~2.5x at P=16 for a memory-bound profile."""
        t1 = CpuCostModel(m1.cpu, pipeline_len=1).query_ns(PROFILE)
        t16 = CpuCostModel(m1.cpu, pipeline_len=16).query_ns(PROFILE)
        assert 1.8 <= t1 / t16 <= 3.2

    def test_latency_scales_with_pipeline(self, m1):
        model = CpuCostModel(m1.cpu, pipeline_len=16)
        assert model.latency_ns(PROFILE) == pytest.approx(
            16 * model.query_ns(PROFILE)
        )

    def test_throughput_bandwidth_cap(self, m1):
        heavy = CpuQueryProfile(40, 40, 0, 0, 40)
        model = CpuCostModel(m1.cpu)
        assert model.throughput_qps(heavy) <= model.bandwidth_cap_qps(heavy)

    def test_bandwidth_cap_infinite_without_misses(self, m1):
        model = CpuCostModel(m1.cpu)
        cached = CpuQueryProfile(7, 0, 0, 0, 7)
        assert model.bandwidth_cap_qps(cached) == float("inf")

    def test_sequential_algorithm_costs_more_compute(self, m1):
        seq = CpuCostModel(m1.cpu, algorithm=NodeSearchAlgorithm.SEQUENTIAL)
        simd = CpuCostModel(
            m1.cpu, algorithm=NodeSearchAlgorithm.HIERARCHICAL_SIMD
        )
        assert seq.compute_ns(PROFILE) > simd.compute_ns(PROFILE)

    def test_cycles_override(self, m1):
        base = CpuCostModel(m1.cpu)
        heavy = CpuCostModel(m1.cpu, cycles_per_node=100.0)
        assert heavy.compute_ns(PROFILE) > base.compute_ns(PROFILE)

    def test_tlb_misses_charged(self, m1):
        model = CpuCostModel(m1.cpu)
        with_tlb = CpuQueryProfile(7, 3, 1.0, 0, 7)
        without = CpuQueryProfile(7, 3, 0.0, 0, 7)
        assert model.memory_ns(with_tlb) > model.memory_ns(without)

    def test_huge_walk_cheaper_than_small(self, m1):
        model = CpuCostModel(m1.cpu)
        small = CpuQueryProfile(7, 3, 1.0, 0.0, 7)
        huge = CpuQueryProfile(7, 3, 0.0, 1.0, 7)
        assert model.memory_ns(huge) < model.memory_ns(small)

    def test_profile_from_counters(self):
        counters = AccessCounters(
            line_accesses=700, cache_hits=400, cache_misses=300,
            tlb_misses_small=80, queries=100,
        )
        profile = CpuQueryProfile.from_counters(counters, 7.0)
        assert profile.lines == 7.0
        assert profile.misses == 3.0
        assert profile.tlb_small == pytest.approx(0.8)


class TestGpuCostModel:
    def test_kernel_time_has_launch_overhead(self, m1):
        model = GpuCostModel(m1.gpu, threads_per_query=8)
        assert model.kernel_ns(0, 1, 1.0) >= m1.gpu.kernel_init_ns

    def test_kernel_time_scales_with_transactions(self, m1):
        model = GpuCostModel(m1.gpu, threads_per_query=8)
        t1 = model.kernel_ns(10_000, 16384, 6.0)
        t2 = model.kernel_ns(100_000, 16384, 6.0)
        assert t2 > t1

    def test_throughput_cap(self, m1):
        model = GpuCostModel(m1.gpu, threads_per_query=8)
        cap = model.throughput_cap_qps(6.0)
        assert cap == pytest.approx(
            m1.gpu.effective_bandwidth_gbs * 1e9 / (6.0 * 64)
        )

    def test_latency_floor_for_small_occupancy(self, m1):
        tiny_gpu = m1.with_gpu(max_resident_threads=64).gpu
        model = GpuCostModel(tiny_gpu, threads_per_query=8)
        # only 8 queries in flight: waves of latency dominate
        t = model.kernel_ns(100, 16384, 6.0)
        waves = 16384 / 8
        assert t >= waves * 6.0 * tiny_gpu.mem_latency_ns


class TestHybridBucketCosts:
    def test_assembly(self, m1):
        costs = hybrid_bucket_costs(
            m1, KEY64, 16384,
            gpu_transactions_per_query=5.5,
            gpu_levels=6.0,
            cpu_leaf_profile=LEAF_PROFILE,
        )
        assert costs.t1 == pytest.approx(
            m1.pcie.transfer_ns(16384 * 8)
        )
        assert costs.t3 == pytest.approx(m1.pcie.transfer_ns(16384 * 8))
        assert costs.t2 > m1.gpu.kernel_init_ns
        assert costs.t4 > 0

    def test_bigger_buckets_amortize_overheads(self, m1):
        def per_query(bucket):
            c = hybrid_bucket_costs(
                m1, KEY64, bucket, 5.5, 6.0, LEAF_PROFILE
            )
            return c.double_buffered / bucket

        assert per_query(64 * 1024) < per_query(8 * 1024)

    def test_intermediate_bytes_override(self, m1):
        small = hybrid_bucket_costs(
            m1, KEY64, 16384, 5.5, 6.0, LEAF_PROFILE, intermediate_bytes=4
        )
        big = hybrid_bucket_costs(
            m1, KEY64, 16384, 5.5, 6.0, LEAF_PROFILE, intermediate_bytes=16
        )
        assert big.t3 > small.t3
