"""Gapped-leaf CPU B+-tree (BS-tree style) + the optimistic engine's
bit-identity property (DESIGN.md §14)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.hbtree import HBPlusTree
from repro.core.mixed import OptimisticMixedEngine
from repro.cpu import GappedCpuBPlusTree, GapStats
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.faults import FaultError, FaultInjector, FaultPlan
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_update_mix


@pytest.fixture(scope="module")
def data():
    return generate_dataset(1 << 13, seed=91)


@pytest.fixture()
def pair(data):
    """A gapped tree and its compact twin over the same pairs."""
    keys, values = data
    return (
        GappedCpuBPlusTree(keys, values, fill=0.7),
        RegularCpuBPlusTree(keys, values, fill=0.7),
    )


class TestLayout:
    def test_bulk_build_bit_identical(self, pair, data):
        keys, _values = data
        gapped, compact = pair
        assert np.array_equal(
            gapped.lookup_batch(keys), compact.lookup_batch(keys)
        )
        gapped.check_invariants()

    def test_gaps_interleaved_at_build_fill(self, pair):
        gapped, _compact = pair
        assert 0.6 < gapped.gap_occupancy() < 0.8
        # gaps are spread through the extent, not packed at the tail:
        # some gap slot must sit strictly left of a real slot
        leaf = gapped._first_leaf
        row = gapped.leaves.gap[leaf]
        extent = int(gapped.leaves.size[leaf])
        assert row[:extent].any() and not row[extent - 1]

    def test_items_exclude_gaps(self, pair, data):
        keys, _values = data
        gapped, _compact = pair
        assert [k for k, _v in gapped.items()] == sorted(keys.tolist())

    def test_range_query_matches_compact(self, pair, data):
        keys, _values = data
        gapped, compact = pair
        lo, hi = int(keys.min()), int(np.median(keys))
        assert list(gapped.range_query(lo, hi)) == list(
            compact.range_query(lo, hi)
        )

    def test_missing_key_misses(self, pair, data):
        keys, _values = data
        gapped, _compact = pair
        missing = int(keys.max()) + 1
        assert gapped.lookup(missing) is None


class TestWritePaths:
    def test_insert_lands_in_gap(self, pair):
        gapped, _compact = pair
        before = gapped.gap_stats.copy()
        # plenty of gaps at fill=0.7: fresh keys overwhelmingly land
        # in place
        rng = np.random.default_rng(3)
        fresh = rng.integers(1, 2**63, size=64, dtype=np.uint64)
        fresh = fresh[~np.isin(fresh, gapped.stored_keys())]
        for k in fresh.tolist():
            gapped.insert(int(k), int(k) ^ 0xFF)
        delta = gapped.gap_stats.gap_writes - before.gap_writes
        assert delta > 0
        # what remains shifts only a short run toward the nearest gap,
        # never the compact layout's half-leaf
        shifts = gapped.gap_stats.shift_writes - before.shift_writes
        moved = gapped.gap_stats.shifted_pairs - before.shifted_pairs
        if shifts:
            assert moved / shifts < 4
        gapped.check_invariants()
        for k in fresh.tolist():
            assert gapped.lookup(int(k)) == int(k) ^ 0xFF

    def test_overwrite_existing_key(self, pair, data):
        keys, _values = data
        gapped, _compact = pair
        target = int(keys[7])
        gapped.insert(target, 123456)
        assert gapped.lookup(target) == 123456
        assert len(gapped) == len(keys)
        gapped.check_invariants()

    def test_delete_marks_gap(self, pair, data):
        keys, _values = data
        gapped, _compact = pair
        before = gapped.gap_stats.gap_deletes
        victims = keys[::97]
        for k in victims.tolist():
            assert gapped.delete(int(k))
        assert gapped.gap_stats.gap_deletes > before
        for k in victims.tolist():
            assert gapped.lookup(int(k)) is None
        assert len(gapped) == len(keys) - len(victims)
        gapped.check_invariants()

    def test_gap_exhaustion_splits(self):
        # fill=1.0 builds gap-free leaves, so the very next insert has
        # to take the split path and re-spread both halves
        keys = np.arange(1, 4097, dtype=np.uint64) * 5
        tree = GappedCpuBPlusTree(keys, keys, fill=1.0)
        assert tree.gap_occupancy() == pytest.approx(1.0)
        rng = np.random.default_rng(11)
        fresh = np.unique(
            rng.integers(1, int(keys.max()), size=512, dtype=np.uint64)
        )
        fresh = fresh[~np.isin(fresh, keys)]
        for k in fresh.tolist():
            tree.insert(int(k), int(k) + 1)
        assert tree.gap_stats.splits > 0
        tree.check_invariants()
        assert np.array_equal(
            tree.lookup_batch(fresh), (fresh + 1).astype(fresh.dtype)
        )
        assert np.array_equal(tree.lookup_batch(keys), keys)

    def test_storm_matches_compact_twin(self, pair, data):
        keys, _values = data
        gapped, compact = pair
        rng = np.random.default_rng(23)
        fresh = np.unique(
            rng.integers(1, 2**63, size=400, dtype=np.uint64)
        )
        fresh = fresh[~np.isin(fresh, gapped.stored_keys())]
        victims = keys[::53]
        for k in fresh.tolist():
            gapped.insert(int(k), int(k) // 3)
            compact.insert(int(k), int(k) // 3)
        for k in victims.tolist():
            assert gapped.delete(int(k)) == compact.delete(int(k))
        assert list(gapped.items()) == list(compact.items())
        gapped.check_invariants()

    def test_insert_batch_matches_scalar(self, data):
        keys, values = data
        batch_tree = GappedCpuBPlusTree(keys, values, fill=0.7)
        scalar_tree = GappedCpuBPlusTree(keys, values, fill=0.7)
        rng = np.random.default_rng(31)
        bk = rng.integers(1, 2**63, size=1024, dtype=np.uint64)
        bv = bk ^ 0xAB
        batch_tree.insert_batch(bk, bv)
        # keep-last dedup semantics: scalar replay in stream order
        for k, v in zip(bk.tolist(), bv.tolist()):
            scalar_tree.insert(int(k), int(v))
        assert list(batch_tree.items()) == list(scalar_tree.items())
        batch_tree.check_invariants()


class TestGapStats:
    def test_copy_and_reset(self):
        stats = GapStats(gap_writes=3, shift_writes=1, shifted_pairs=4)
        snap = stats.copy()
        stats.reset()
        assert snap.gap_writes == 3 and stats.gap_writes == 0
        assert snap.in_place_fraction == pytest.approx(0.75)
        assert GapStats().in_place_fraction == 0.0


# --- S4: the engine-level bit-identity property -----------------------

ENGINE_EXAMPLES = settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestOptimisticEngineProperty:
    @given(
        n_ops=st.integers(min_value=1, max_value=80),
        update_pct=st.integers(min_value=0, max_value=80),
        delete_pct=st.integers(min_value=0, max_value=20),
        fill=st.sampled_from([0.7, 1.0]),
        fault_rate=st.sampled_from([0.0, 0.05, 0.3]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @ENGINE_EXAMPLES
    def test_bit_identical_to_sequential_baseline(
        self, m1, n_ops, update_pct, delete_pct, fill, fault_rate, seed
    ):
        """Any mix, any ratio, any fault plan: the gapped optimistic
        engine's tree *and* GPU mirror answer exactly like an ungapped
        tree that applied the same ops one at a time.

        ``fill=1.0`` builds gap-free leaves so inserts exercise the
        split path (structural change -> full mirror rebuild);
        ``fault_rate>0`` exercises the sync retry/rebuild ladder.
        """
        keys, values = generate_dataset(512, seed=seed % 7 + 1)
        mix = make_update_mix(
            keys, n_ops, update_pct / 100, seed=seed,
            delete_ratio=delete_pct / 100,
        )

        opt_tree = HBPlusTree(
            keys, values, machine=m1, gapped=True, fill=fill
        )
        engine = OptimisticMixedEngine(opt_tree)
        if fault_rate:
            opt_tree.attach_injector(
                FaultInjector(FaultPlan.uniform(fault_rate, seed=seed))
            )
        try:
            result = engine.run(mix)
        except FaultError:
            # an unlucky deterministic fault sequence can exhaust the
            # SYNC_FAULT_RETRIES ladder even at rate < 1.0; the engine's
            # documented contract is to propagate the typed fault so a
            # resilient wrapper can degrade (see _rebuild_with_retries).
            # Bit-identity is only claimed for runs that complete.
            assume(False)
        if opt_tree.injector is not None:
            # faults are scoped to the engine run under test; the
            # verification lookups below must see a quiet device
            opt_tree.injector.disable()

        ref_tree = HBPlusTree(keys, values, machine=m1)
        upd = iter(zip(mix.update_keys.tolist(),
                       mix.update_values.tolist()))
        dels = iter(mix.delete_keys.tolist())
        is_delete = (
            mix.is_delete
            if mix.is_delete is not None
            else np.zeros(len(mix), dtype=bool)
        )
        for is_up, is_del in zip(mix.is_update.tolist(),
                                 is_delete.tolist()):
            if is_del:
                ref_tree.cpu_tree.delete(int(next(dels)))
            elif is_up:
                k, v = next(upd)
                ref_tree.cpu_tree.insert(int(k), int(v))
        ref_tree.mirror_i_segment()

        # the engine's own answers, in stream order
        assert np.array_equal(
            result.search_results,
            ref_tree.cpu_tree.lookup_batch(mix.search_keys),
        )
        # every key class through both full trees, GPU mirror included
        probe = np.concatenate(
            [keys, mix.update_keys, mix.delete_keys]
        ).astype(keys.dtype)
        assert np.array_equal(
            opt_tree.cpu_tree.lookup_batch(probe),
            ref_tree.cpu_tree.lookup_batch(probe),
        )
        assert np.array_equal(
            opt_tree.lookup_batch(probe), ref_tree.lookup_batch(probe)
        )
        opt_tree.cpu_tree.check_invariants()
