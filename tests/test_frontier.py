"""Level-wise frontier traversal kernel: geometry guards, degenerate
buckets, kernel equivalence, engine parity and cost-model-driven kernel
selection (DESIGN.md §13)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveConfig, AdaptiveController
from repro.core.batching import BatchingEngine
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.core.overlap import OverlappedEngine
from repro.faults import FaultInjector, FaultPlan
from repro.gpusim.kernels.frontier_search import (
    FRONTIER,
    KERNELS,
    PER_QUERY,
    frontier_search_from_counted,
    frontier_search_vectorized,
    launch_frontier_search,
    validate_kernel,
    validate_level_geometry,
)
from repro.gpusim.kernels.implicit_search import (
    implicit_search_from_counted,
    implicit_search_vectorized,
    launch_implicit_search,
)
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(4096, seed=13)


@pytest.fixture(scope="module")
def itree(data):
    keys, values = data
    return ImplicitHBPlusTree(keys, values, machine=machine_m1())


def device_counters(tree):
    c = tree.device.memory.counters
    return (
        int(tree.device.kernel_launches),
        int(c.transactions_64),
        int(c.bytes_moved),
    )


class TestKernelNames:
    def test_registry(self):
        assert KERNELS == (PER_QUERY, FRONTIER)
        assert validate_kernel(PER_QUERY) == PER_QUERY
        assert validate_kernel(FRONTIER) == FRONTIER

    def test_unknown_rejected(self, itree):
        with pytest.raises(ValueError, match="unknown GPU search kernel"):
            validate_kernel("warp_per_query")
        with pytest.raises(ValueError):
            itree.gpu_descend(np.zeros(1, dtype=np.uint64), kernel="nope")
        with pytest.raises(ValueError):
            BatchingEngine(itree, kernel="nope")
        with pytest.raises(ValueError):
            OverlappedEngine(itree, kernel="nope")


class TestGeometryValidation:
    """Satellite: a mismatched launch raises instead of misindexing."""

    def test_real_tree_geometry_passes(self, itree):
        validate_level_geometry(
            itree.level_offsets, itree.level_sizes, itree.gpu_depth,
            itree.cpu_tree.fanout, itree.iseg_buffer.array.size,
        )
        validate_level_geometry(
            itree.level_offsets, None, itree.gpu_depth,
            itree.cpu_tree.fanout, itree.iseg_buffer.array.size,
        )

    def test_depth_zero_trivially_valid(self):
        validate_level_geometry([], None, 0, 4, 0)

    @pytest.mark.parametrize("kwargs, match", [
        (dict(level_offsets=[0], depth=-1, fanout=4, total=16),
         "depth must be"),
        (dict(level_offsets=[0], depth=1, fanout=1, total=16),
         "fanout must be"),
        (dict(level_offsets=[4], depth=1, fanout=4, total=16),
         "root level"),
        (dict(level_offsets=[0], depth=2, fanout=4, total=16),
         "names 1 levels"),
        (dict(level_offsets=[0, 3], depth=2, fanout=4, total=16),
         "not a positive"),
        (dict(level_offsets=[0, 4], depth=2, fanout=4, total=4096),
         "address at most"),
    ])
    def test_bad_geometry_rejected(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            validate_level_geometry(
                kwargs["level_offsets"], None, kwargs["depth"],
                kwargs["fanout"], kwargs["total"],
            )

    def test_non_tiling_sizes_rejected(self):
        # explicit sizes that leave a gap between consecutive levels
        with pytest.raises(ValueError, match="tile the I-segment"):
            validate_level_geometry([0, 8], [4, 16], 2, 4, 24)

    def test_sizes_past_segment_end_rejected(self):
        # explicit sizes let the last level overrun the buffer
        with pytest.raises(ValueError, match="holds"):
            validate_level_geometry([0, 4], [4, 16], 2, 4, 16)

    def test_both_launchers_validate(self, itree):
        q = np.zeros(2, dtype=np.uint64)
        wrong_depth = itree.gpu_depth + 3
        with pytest.raises(ValueError):
            launch_implicit_search(
                itree.device, itree.iseg_buffer, itree.level_offsets,
                wrong_depth, itree.cpu_tree.fanout, q,
            )
        with pytest.raises(ValueError):
            launch_frontier_search(
                itree.device, itree.iseg_buffer, itree.level_offsets,
                wrong_depth, itree.cpu_tree.fanout, q,
            )
        with pytest.raises(ValueError):
            launch_frontier_search(
                itree.device, itree.iseg_buffer, itree.level_offsets,
                itree.gpu_depth, itree.cpu_tree.fanout + 1, q,
            )

    def test_vectorized_kernels_validate(self, itree):
        q = np.zeros(2, dtype=np.uint64)
        with pytest.raises(ValueError):
            frontier_search_vectorized(
                itree.iseg_buffer.array, itree.level_offsets,
                itree.level_sizes, itree.gpu_depth + 1,
                itree.cpu_tree.fanout, q,
            )

    def test_block_queries_validated(self, itree):
        with pytest.raises(ValueError, match="block_queries"):
            frontier_search_vectorized(
                itree.iseg_buffer.array, itree.level_offsets,
                itree.level_sizes, itree.gpu_depth,
                itree.cpu_tree.fanout, np.zeros(2, dtype=np.uint64),
                block_queries=-1,
            )


class TestDegenerateBuckets:
    """Satellite: zero-length and single-query buckets are guarded and
    the degenerate frontier's counters match the per-query kernel."""

    def test_empty_bucket_no_launch_no_transactions(self, data):
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=machine_m1())
        empty = np.array([], dtype=np.uint64)
        before = device_counters(tree)
        res = tree.gpu_search_bucket(empty, kernel=FRONTIER)
        assert len(res.leaf_indices) == 0
        assert res.transactions == 0
        assert device_counters(tree) == before

    def test_empty_engine_bucket(self, itree):
        engine = BatchingEngine(itree, kernel=FRONTIER)
        out = engine.lookup_batch(np.array([], dtype=np.uint64))
        assert len(out) == 0

    def test_single_query_counters_match_per_query(self, data):
        keys, values = data
        outs, counters, txns = [], [], []
        for kern in KERNELS:
            tree = ImplicitHBPlusTree(keys, values, machine=machine_m1())
            res = tree.gpu_search_bucket(keys[:1], kernel=kern)
            outs.append(res.leaf_indices)
            txns.append(res.transactions)
            counters.append(device_counters(tree))
        # one query = one frontier run per level = one warp window:
        # both kernels charge exactly depth transactions
        assert np.array_equal(outs[0], outs[1])
        assert txns[0] == txns[1]
        assert counters[0] == counters[1]

    def test_single_query_regular_counters_match(self, data):
        keys, values = data
        outs, counters = [], []
        for kern in KERNELS:
            tree = HBPlusTree(keys, values, machine=machine_m1())
            res = tree.gpu_search_bucket(keys[:1], kernel=kern)
            outs.append(res.codes)
            counters.append(device_counters(tree))
        assert np.array_equal(outs[0], outs[1])
        assert counters[0] == counters[1]

    def test_frontier_from_counted_all_cpu(self, itree, data):
        keys, _values = data
        q = np.unique(keys[:32])
        h = itree.gpu_depth
        leaf, txns = frontier_search_from_counted(
            itree.iseg_buffer.array, itree.level_offsets,
            itree.level_sizes, h, itree.cpu_tree.fanout, q,
            start_levels=np.full(len(q), h, dtype=np.int64),
            start_nodes=np.arange(len(q), dtype=np.int64),
        )
        assert np.array_equal(leaf, np.arange(len(q)))
        assert txns == 0


class TestKernelEquivalence:
    """Tentpole property: frontier_search_vectorized ≡
    frontier_search_kernel ≡ implicit_search_vectorized results."""

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        picks=st.lists(st.integers(0, 4095), min_size=1, max_size=256),
        offset=st.sampled_from([0, 1]),
        sort=st.booleans(),
    )
    def test_vectorized_matches_per_query(self, itree, picks, offset, sort):
        keys = itree.cpu_tree.leaf_keys.reshape(-1)
        keys = keys[keys != itree.spec.max_value]
        q = keys[np.asarray(picks) % len(keys)] + np.uint64(offset)
        if sort:
            q = np.unique(q)
        args = (
            itree.iseg_buffer.array, itree.level_offsets,
            itree.level_sizes, itree.gpu_depth, itree.cpu_tree.fanout, q,
        )
        ref, ref_txns = implicit_search_vectorized(
            *args, teams_per_warp=itree.teams_per_warp
        )
        out, txns = frontier_search_vectorized(*args)
        assert np.array_equal(out, ref)
        if sort:
            # the frontier's whole-block dedup can only beat (or tie)
            # the per-query kernel's warp-window coalescing
            assert txns <= ref_txns

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        picks=st.lists(st.integers(0, 4095), min_size=1, max_size=24),
        offset=st.sampled_from([0, 1]),
    )
    def test_literal_kernel_matches_vectorized(self, itree, picks, offset):
        keys = itree.cpu_tree.leaf_keys.reshape(-1)
        keys = keys[keys != itree.spec.max_value]
        q = keys[np.asarray(picks) % len(keys)] + np.uint64(offset)
        literal, _stats = launch_frontier_search(
            itree.device, itree.iseg_buffer, itree.level_offsets,
            itree.gpu_depth, itree.cpu_tree.fanout, q,
            level_sizes=itree.level_sizes,
        )
        vector, _txns = frontier_search_vectorized(
            itree.iseg_buffer.array, itree.level_offsets,
            itree.level_sizes, itree.gpu_depth, itree.cpu_tree.fanout, q,
        )
        assert np.array_equal(literal, vector)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        picks=st.lists(st.integers(0, 4095), min_size=1, max_size=128),
        depth_frac=st.integers(0, 6),
        ratio=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
    )
    def test_from_counted_matches_per_query(self, itree, picks,
                                            depth_frac, ratio):
        from repro.core.adaptive import split_levels

        keys = itree.cpu_tree.leaf_keys.reshape(-1)
        keys = keys[keys != itree.spec.max_value]
        q = np.unique(keys[np.asarray(picks) % len(keys)])
        h = itree.cpu_tree.height
        levels = split_levels(len(q), min(depth_frac, h), ratio, h)
        nodes = itree.cpu_descend_top(q, levels)
        args = (
            itree.iseg_buffer.array, itree.level_offsets,
            itree.level_sizes, itree.gpu_depth, itree.cpu_tree.fanout, q,
        )
        ref, _t = implicit_search_from_counted(
            *args, start_levels=levels, start_nodes=nodes,
            teams_per_warp=itree.teams_per_warp,
        )
        out, _t2 = frontier_search_from_counted(
            *args, start_levels=levels, start_nodes=nodes,
        )
        assert np.array_equal(out, ref)

    def test_gpu_descend_kernel_dispatch(self, itree, data):
        keys, _values = data
        q = np.unique(keys[:512])
        pq, pq_txns = itree.gpu_descend(q, kernel=PER_QUERY)
        fr, fr_txns = itree.gpu_descend(q, kernel=FRONTIER)
        assert np.array_equal(pq, fr)
        # acceptance: at the paper geometry the frontier strictly wins
        # on a sorted multi-warp bucket
        assert fr_txns < pq_txns

    def test_regular_tree_codes_identical(self, data):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=machine_m1())
        q = np.unique(keys[:512])
        pq, pq_txns = tree.gpu_descend(q, kernel=PER_QUERY)
        fr, fr_txns = tree.gpu_descend(q, kernel=FRONTIER)
        assert np.array_equal(pq, fr)
        assert fr_txns <= pq_txns


class TestEngineKernelParity:
    """Satellite: engine runs with kernel="frontier" are bit-identical
    to kernel="per_query", including under any FaultPlan."""

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        picks=st.lists(st.integers(0, 4095), min_size=1, max_size=512),
        bucket=st.sampled_from([64, 256, 1024]),
        implicit=st.booleans(),
    )
    def test_batching_engine_bit_identical(self, data, picks, bucket,
                                           implicit):
        keys, values = data
        q = keys[np.asarray(picks) % len(keys)]
        outs, launches, txns = [], [], []
        for kern in KERNELS:
            cls = ImplicitHBPlusTree if implicit else HBPlusTree
            tree = cls(keys, values, machine=machine_m1())
            engine = BatchingEngine(tree, bucket_size=bucket, kernel=kern)
            outs.append(engine.lookup_batch(q))
            launches.append(int(tree.device.kernel_launches))
            txns.append(int(tree.device.memory.counters.transactions_64))
        assert np.array_equal(outs[0], outs[1])
        # the kernel moves the traversal schedule, never the launch
        # screening: identical launch counts, frontier never dearer
        assert launches[0] == launches[1]
        assert txns[1] <= txns[0]

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        rate=st.sampled_from([0.1, 0.5]),
        fault_seed=st.integers(0, 2**16),
    )
    def test_fault_schedule_identical_across_kernels(self, data, rate,
                                                     fault_seed):
        keys, values = data
        plan = FaultPlan.uniform(rate, seed=fault_seed)
        q = np.tile(keys[:256], 4)

        def run(kern):
            injector = FaultInjector(plan)
            tree = HBPlusTree(
                keys, values, machine=machine_m1(), injector=injector,
            )
            engine = BatchingEngine(tree, bucket_size=128, kernel=kern)
            try:
                out, err = engine.lookup_batch(q), None
            except Exception as e:  # noqa: BLE001 - comparing fault types
                out, err = None, e
            return out, err, injector.schedule()

        pq_out, pq_err, pq_sched = run(PER_QUERY)
        fr_out, fr_err, fr_sched = run(FRONTIER)
        assert pq_sched == fr_sched
        assert (pq_err is None) == (fr_err is None)
        if pq_err is not None:
            assert type(fr_err) is type(pq_err)
            assert str(fr_err) == str(pq_err)
        else:
            np.testing.assert_array_equal(fr_out, pq_out)

    def test_implicit_launch_faults_identical_across_kernels(self, data):
        """The kernel choice must not move the injector draw stream:
        the implicit tree's launch-site faults fire at the same buckets
        either way."""
        keys, values = data
        q = np.tile(keys[:256], 4)
        plan = FaultPlan(seed=7, kernel_fail=0.3)

        def run(kern):
            tree = ImplicitHBPlusTree(keys, values, machine=machine_m1())
            injector = FaultInjector(plan)
            tree.device.injector = injector
            engine = BatchingEngine(tree, bucket_size=128, kernel=kern)
            try:
                out, err = engine.lookup_batch(q), None
            except Exception as e:  # noqa: BLE001 - comparing fault types
                out, err = None, e
            return out, err, injector.schedule()

        pq_out, pq_err, pq_sched = run(PER_QUERY)
        fr_out, fr_err, fr_sched = run(FRONTIER)
        assert pq_sched == fr_sched
        assert type(pq_err) is type(fr_err)
        if pq_err is None:
            np.testing.assert_array_equal(fr_out, pq_out)

    @pytest.mark.concurrency
    def test_overlap_engine_kernel_parity(self, data):
        keys, values = data
        q = np.tile(keys[:512], 8)
        outs = []
        for kern in KERNELS:
            tree = ImplicitHBPlusTree(keys, values, machine=machine_m1())
            engine = OverlappedEngine(
                tree, bucket_size=256, strategy="double_buffered",
                gpu_workers=2, cpu_workers=2, kernel=kern,
            )
            outs.append(engine.lookup_batch(q))
        assert np.array_equal(outs[0], outs[1])


class TestKernelSelection:
    """Tentpole: discovery prices both kernels and commits the cheaper
    (kernel, D, R) triple; the engines apply it per bucket."""

    def test_discovery_result_carries_kernel(self, itree):
        balancer = LoadBalancer(itree, sort_batches=True)
        result = balancer.discover()
        assert result.kernel in KERNELS
        assert balancer.kernel == result.kernel

    def test_frontier_wins_on_m1(self, itree):
        """At the paper's default geometry the frontier kernel's level
        costs are strictly below per-query, so discovery must not pick
        a per-query split that the frontier run beats."""
        balancer = LoadBalancer(itree, sort_batches=True)
        pq = balancer.gpu_costs_for(PER_QUERY)
        fr = balancer.gpu_costs_for(FRONTIER)
        assert sum(fr) < sum(pq)
        result = balancer.discover()
        # the committed cost equals an exhaustive per-kernel argmin
        for kern in KERNELS:
            _samples, best = balancer._discover_kernel(kern, None)
            assert result.cost_ns <= max(best[2], best[3])

    def test_allowed_kernels_pins_schedule(self, itree):
        balancer = LoadBalancer(
            itree, sort_batches=True, allowed_kernels=(PER_QUERY,)
        )
        assert balancer.candidate_kernels() == (PER_QUERY,)
        result = balancer.discover()
        assert result.kernel == PER_QUERY

    def test_allowed_kernels_validated(self, itree):
        with pytest.raises(ValueError):
            LoadBalancer(itree, allowed_kernels=("nope",))

    def test_sample_times_kernel_dimension(self, itree):
        balancer = LoadBalancer(itree, sort_batches=True)
        tg_pq, tc_pq = balancer.sample_times(0, 0.0, kernel=PER_QUERY)
        tg_fr, tc_fr = balancer.sample_times(0, 0.0, kernel=FRONTIER)
        assert tc_fr == tc_pq  # the CPU side is kernel-independent
        assert tg_fr < tg_pq

    def test_adaptive_controller_commits_kernel(self, itree, data):
        keys, _values = data
        controller = AdaptiveController.for_tree(
            itree, config=AdaptiveConfig(window_buckets=2,
                                         confirm_windows=1,
                                         hysteresis_gain=0.0),
            bucket_size=512,
        )
        assert controller.kernel in KERNELS
        assert controller.stats.kernel == controller.kernel
        engine = BatchingEngine(itree, bucket_size=512,
                                balancer=controller)
        ref = BatchingEngine(itree, bucket_size=512)
        q = np.tile(keys[:1024], 2)
        out = engine.lookup_batch(q)
        expected = ref.lookup_batch(q)
        assert np.array_equal(out, expected)

    def test_engine_explicit_kernel_overrides_balancer(self, itree, data):
        keys, _values = data
        controller = AdaptiveController.for_tree(itree, bucket_size=512)
        engine = BatchingEngine(itree, bucket_size=512,
                                balancer=controller, kernel=PER_QUERY)
        assert engine._bucket_kernel() == PER_QUERY
        engine2 = BatchingEngine(itree, bucket_size=512,
                                 balancer=controller)
        assert engine2._bucket_kernel() == controller.kernel
