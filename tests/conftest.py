"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.memsim.mainmem import MemorySystem
from repro.platform.configs import machine_m1, machine_m2
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="session")
def m1():
    return machine_m1()


@pytest.fixture(scope="session")
def m2():
    return machine_m2()


@pytest.fixture()
def mem(m1):
    return MemorySystem.from_spec(m1.cpu)


@pytest.fixture(scope="session")
def dataset64():
    """A medium 64-bit dataset shared (read-only) across tests."""
    return generate_dataset(4096, key_bits=64, seed=7)


@pytest.fixture(scope="session")
def dataset32():
    return generate_dataset(4096, key_bits=32, seed=7)


@pytest.fixture(scope="session")
def small_dataset64():
    return generate_dataset(512, key_bits=64, seed=11)


def sorted_pairs(keys, values):
    order = np.argsort(keys)
    return keys[order], values[order]
