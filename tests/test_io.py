"""Index persistence round trips."""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.cpu.fast_tree import FastTree
from repro.io import load_index, save_index
from repro.memsim.mainmem import MemorySystem
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(3000, seed=55)


class TestRoundTrips:
    def test_implicit_cpu(self, data, tmp_path):
        keys, values = data
        tree = ImplicitCpuBPlusTree(keys, values, fanout=8)
        path = save_index(tree, tmp_path / "idx")
        loaded = load_index(path)
        assert isinstance(loaded, ImplicitCpuBPlusTree)
        assert loaded.fanout == 8
        assert np.array_equal(loaded.lookup_batch(keys), values)

    def test_regular_cpu(self, data, tmp_path):
        keys, values = data
        tree = RegularCpuBPlusTree(keys, values)
        # mutate before saving: dynamic state must round trip by content
        tree.insert(int(keys.max()) + 10, 7)
        path = save_index(tree, tmp_path / "idx.npz")
        loaded = load_index(path)
        assert loaded.lookup(int(keys.max()) + 10) == 7
        assert np.array_equal(loaded.lookup_batch(keys), values)
        loaded.check_invariants()

    def test_css(self, data, tmp_path):
        keys, values = data
        path = save_index(CssTree(keys, values), tmp_path / "css")
        loaded = load_index(path)
        assert isinstance(loaded, CssTree)
        assert np.array_equal(loaded.lookup_batch(keys), values)

    def test_fast(self, data, tmp_path):
        keys, values = data
        path = save_index(FastTree(keys, values), tmp_path / "fast")
        loaded = load_index(path)
        assert isinstance(loaded, FastTree)
        assert np.array_equal(loaded.lookup_batch(keys), values)

    def test_hybrid_implicit(self, data, tmp_path, m1):
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=m1)
        path = save_index(tree, tmp_path / "hb")
        loaded = load_index(path, machine=m1)
        assert isinstance(loaded, ImplicitHBPlusTree)
        assert np.array_equal(loaded.lookup_batch(keys), values)

    def test_hybrid_regular(self, data, tmp_path, m1):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1)
        path = save_index(tree, tmp_path / "hbr")
        loaded = load_index(path, machine=m1)
        assert isinstance(loaded, HBPlusTree)
        assert np.array_equal(loaded.lookup_batch(keys), values)

    def test_32bit_round_trip(self, tmp_path):
        keys, values = generate_dataset(500, key_bits=32, seed=56)
        path = save_index(CssTree(keys, values, key_bits=32),
                          tmp_path / "k32")
        loaded = load_index(path)
        assert loaded.spec.bits == 32
        assert np.array_equal(loaded.lookup_batch(keys), values)


class TestErrors:
    def test_hybrid_requires_machine(self, data, tmp_path, m1):
        keys, values = data
        path = save_index(
            ImplicitHBPlusTree(keys, values, machine=m1), tmp_path / "hb"
        )
        with pytest.raises(ValueError):
            load_index(path)

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_index(object(), tmp_path / "x")

    def test_mem_passthrough(self, data, tmp_path):
        keys, values = data
        path = save_index(CssTree(keys, values), tmp_path / "css")
        mem = MemorySystem()
        loaded = load_index(path, mem=mem)
        loaded.lookup(int(keys[0]))
        assert mem.counters.line_accesses > 0

    def test_npz_suffix_appended(self, data, tmp_path):
        keys, values = data
        path = save_index(CssTree(keys, values), tmp_path / "noext")
        assert path.suffix == ".npz"


class TestMergeRebuild:
    def test_merge_update_correct(self, data):
        keys, values = data
        tree = ImplicitCpuBPlusTree(keys, values)
        new_keys = np.asarray(
            [int(keys.max()) + i for i in range(1, 101)], dtype=np.uint64
        )
        new_vals = np.arange(100, dtype=np.uint64)
        tree.merge_update(new_keys, new_vals, deletes=keys[:50])
        assert np.array_equal(tree.lookup_batch(new_keys), new_vals)
        out = tree.lookup_batch(keys[:50])
        assert np.all(out == tree.spec.max_value)
        assert len(tree) == len(keys) - 50 + 100

    def test_merge_upsert_overwrites(self, data):
        keys, values = data
        tree = ImplicitCpuBPlusTree(keys, values)
        tree.merge_update(keys[:10], np.arange(10, dtype=np.uint64))
        assert np.array_equal(tree.lookup_batch(keys[:10]),
                              np.arange(10, dtype=np.uint64))
        assert len(tree) == len(keys)

    def test_merge_equals_full_rebuild(self, data):
        keys, values = data
        merged = ImplicitCpuBPlusTree(keys, values)
        new_keys = np.asarray([1, 2, 3], dtype=np.uint64)
        new_vals = np.asarray([11, 22, 33], dtype=np.uint64)
        merged.merge_update(new_keys, new_vals)
        rebuilt = ImplicitCpuBPlusTree(
            np.concatenate([keys, new_keys]),
            np.concatenate([values, new_vals]),
        )
        assert merged.items() == rebuilt.items()

    def test_merge_duplicate_batch_rejected(self, data):
        keys, values = data
        tree = ImplicitCpuBPlusTree(keys, values)
        with pytest.raises(ValueError):
            tree.merge_update([5, 5], [1, 2])

    def test_merge_to_empty_rejected(self):
        tree = ImplicitCpuBPlusTree([1, 2], [1, 2])
        with pytest.raises(ValueError):
            tree.merge_update(deletes=[1, 2])

    def test_hybrid_merge_rebuild_cheaper(self, data, m1):
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=m1)
        new_keys = np.asarray([int(keys.max()) + 1], dtype=np.uint64)
        merge_times = tree.merge_rebuild(new_keys, [9])
        assert tree.lookup(int(new_keys[0])) == 9
        items = tree.cpu_tree.items()
        ks = np.asarray([k for k, _v in items], dtype=np.uint64)
        vs = np.asarray([v for _k, v in items], dtype=np.uint64)
        full_times = tree.rebuild(ks, vs)
        rebuild_work = full_times.l_segment_ns + full_times.i_segment_ns
        merge_work = merge_times.l_segment_ns + merge_times.i_segment_ns
        assert merge_work < rebuild_work


class TestAtomicity:
    def test_save_leaves_no_temp_file(self, data, tmp_path):
        keys, values = data
        save_index(CssTree(keys, values), tmp_path / "idx")
        assert [p.name for p in tmp_path.iterdir()] == ["idx.npz"]

    def test_save_replaces_existing_archive(self, data, tmp_path):
        keys, values = data
        path = save_index(RegularCpuBPlusTree(keys, values),
                          tmp_path / "idx")
        save_index(CssTree(keys, values), tmp_path / "idx")
        loaded = load_index(path)
        assert isinstance(loaded, CssTree)


class TestVersionGate:
    def test_missing_version_rejected(self, tmp_path):
        path = tmp_path / "old.npz"
        np.savez(path, keys=np.arange(4, dtype=np.uint64),
                 values=np.arange(4, dtype=np.uint64),
                 meta=np.array(["kind=css", "key_bits=64"]))
        with pytest.raises(ValueError, match="no version meta"):
            load_index(path)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "new.npz"
        np.savez(path, keys=np.arange(4, dtype=np.uint64),
                 values=np.arange(4, dtype=np.uint64),
                 meta=np.array(["version=99", "kind=css", "key_bits=64"]))
        with pytest.raises(ValueError, match="version"):
            load_index(path)


class TestEmptyTrees:
    """Empty-tree round trips must preserve key dtype exactly.

    Only the insert-capable kinds can represent zero tuples; the
    bulk-only kinds reject empty construction, and this matrix
    documents which is which.
    """

    @pytest.mark.parametrize("build", [
        lambda m1: RegularCpuBPlusTree((), ()),
        lambda m1: HBPlusTree((), (), machine=m1),
    ], ids=["regular-cpu", "hb-regular"])
    def test_empty_round_trip(self, build, m1, tmp_path):
        tree = build(m1)
        loaded = load_index(save_index(tree, tmp_path / "empty"),
                            machine=m1)
        assert type(loaded) is type(tree)
        got = loaded.lookup_batch(np.array([1, 2], dtype=np.uint64))
        assert got.dtype == np.uint64
        assert np.array_equal(
            got, np.full(2, loaded.spec.max_value, dtype=np.uint64)
        )
        # and the reloaded empty tree still accepts inserts
        target = loaded.cpu_tree if isinstance(loaded, HBPlusTree) \
            else loaded
        target.insert(42, 7)
        assert target.lookup(42) == 7

    def test_empty_round_trip_32bit(self, tmp_path):
        tree = RegularCpuBPlusTree((), (), key_bits=32)
        loaded = load_index(save_index(tree, tmp_path / "e32"))
        got = loaded.lookup_batch(np.array([1], dtype=np.uint32))
        assert got.dtype == np.uint32

    @pytest.mark.parametrize("build", [
        lambda m1: ImplicitCpuBPlusTree((), ()),
        lambda m1: CssTree((), ()),
        lambda m1: FastTree((), ()),
        lambda m1: ImplicitHBPlusTree((), (), machine=m1),
    ], ids=["implicit-cpu", "css", "fast", "hb-implicit"])
    def test_bulk_only_kinds_reject_empty(self, build, m1):
        with pytest.raises(ValueError):
            build(m1)
