"""FAST baseline (Fig 9's comparison tree)."""

import math

import numpy as np
import pytest

from repro.cpu.fast_tree import FastTree
from repro.keys import KEY64
from repro.memsim.mainmem import MemorySystem


class TestLookup:
    def test_all_keys_found(self, dataset64):
        keys, values = dataset64
        tree = FastTree(keys, values)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_scalar_matches_batch(self, small_dataset64):
        keys, values = small_dataset64
        tree = FastTree(keys, values)
        for k, v in zip(keys[:64].tolist(), values[:64].tolist()):
            assert tree.lookup(k) == v

    def test_absent(self, dataset64):
        keys, values = dataset64
        tree = FastTree(keys, values)
        assert tree.lookup(int(keys.max()) + 1) is None
        present = set(keys.tolist())
        rng = np.random.default_rng(1)
        for probe in rng.choice(2**61, size=40).tolist():
            if int(probe) not in present:
                assert tree.lookup(int(probe)) is None

    def test_single_tuple(self):
        tree = FastTree([42], [420])
        assert tree.lookup(42) == 420
        assert tree.lookup(41) is None

    def test_32bit(self, dataset32):
        keys, values = dataset32
        tree = FastTree(keys, values, key_bits=32)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_contains(self, small_dataset64):
        keys, values = small_dataset64
        tree = FastTree(keys, values)
        assert int(keys[0]) in tree

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            FastTree([1, 1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FastTree([], [])


class TestBlocking:
    def test_line_depth_64bit(self, small_dataset64):
        keys, values = small_dataset64
        tree = FastTree(keys, values)
        # a 64-byte line holds a depth-3 binary subtree of 64-bit keys
        assert tree.line_depth == 3

    def test_line_depth_32bit(self, dataset32):
        keys, values = dataset32
        tree = FastTree(keys, values, key_bits=32)
        assert tree.line_depth == 4

    def test_lines_per_query_formula(self, dataset64):
        keys, values = dataset64
        tree = FastTree(keys, values)
        assert tree.lines_per_query == math.ceil(tree.depth / 3) + 1

    def test_touches_at_most_lines_per_query(self, dataset64):
        keys, values = dataset64
        mem = MemorySystem()
        tree = FastTree(keys, values, mem=mem)
        mem.reset_counters()
        tree.lookup(int(keys[0]))
        assert mem.counters.line_accesses <= tree.lines_per_query

    def test_fewer_lines_than_binary_levels(self, dataset64):
        """Blocking is the whole point: fewer lines than tree depth."""
        keys, values = dataset64
        mem = MemorySystem()
        tree = FastTree(keys, values, mem=mem)
        mem.reset_counters()
        tree.lookup(int(keys[1]))
        assert mem.counters.line_accesses < tree.depth
