"""Bucket scheduling strategies (section 5.4, Figs 5-6, 10)."""

import pytest

from repro.core.buckets import iter_buckets, num_buckets
from repro.core.pipeline import (
    BucketStrategy,
    BucketTimeline,
    PipelineRun,
    PipelineSimulator,
    nearest_rank_index,
    strategy_latency_ns,
    strategy_throughput_qps,
)
from repro.platform.costmodel import BucketCosts

import numpy as np

# a bucket-cost shape typical for M1 (T2 ~ T4, transfers smaller)
COSTS = BucketCosts(t1=20e3, t2=60e3, t3=20e3, t4=55e3)


class TestBuckets:
    def test_num_buckets(self):
        assert num_buckets(16384, 16384) == 1
        assert num_buckets(16385, 16384) == 2
        assert num_buckets(0, 16384) == 0

    def test_iter_buckets_partition(self):
        q = np.arange(100)
        chunks = list(iter_buckets(q, 32))
        assert [len(c) for c in chunks] == [32, 32, 32, 4]
        assert np.array_equal(np.concatenate(chunks), q)

    def test_invalid_bucket_size(self):
        with pytest.raises(ValueError):
            num_buckets(10, 0)
        with pytest.raises(ValueError):
            list(iter_buckets([1], -1))


class TestClosedForms:
    def test_sequential_is_sum(self):
        assert COSTS.sequential == pytest.approx(155e3)

    def test_pipelined_formula(self):
        # T_P = T1 + max(T2 + T3, T4)
        assert COSTS.pipelined == pytest.approx(20e3 + 80e3)

    def test_double_buffered_formula(self):
        assert COSTS.double_buffered == pytest.approx(60e3)

    def test_latency_formulas(self):
        # section 5.4's latency expressions
        assert COSTS.latency_ns("sequential") == pytest.approx(155e3)
        assert COSTS.latency_ns("pipelined") == pytest.approx(
            20e3 + 60e3 + 20e3 + 55e3 / 2
        )
        assert COSTS.latency_ns("double_buffered") == pytest.approx(
            2 * 60e3 + 55e3 / 2 + 40e3
        )

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            COSTS.latency_ns("bogus")
        with pytest.raises(ValueError):
            COSTS.throughput_qps("bogus", 16384)


class TestEventSimulator:
    def test_strategy_throughput_ordering(self):
        seq = strategy_throughput_qps(COSTS, BucketStrategy.SEQUENTIAL, 16384)
        pipe = strategy_throughput_qps(COSTS, BucketStrategy.PIPELINED, 16384)
        db = strategy_throughput_qps(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384
        )
        assert seq < pipe < db

    def test_sequential_matches_closed_form(self):
        qps = strategy_throughput_qps(COSTS, BucketStrategy.SEQUENTIAL, 16384)
        assert qps == pytest.approx(16384 * 1e9 / COSTS.sequential, rel=0.01)

    def test_pipelined_near_closed_form(self):
        qps = strategy_throughput_qps(COSTS, BucketStrategy.PIPELINED, 16384)
        assert qps == pytest.approx(16384 * 1e9 / COSTS.pipelined, rel=0.05)

    def test_double_buffered_reaches_max_t2_t4(self):
        qps = strategy_throughput_qps(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384
        )
        assert qps == pytest.approx(
            16384 * 1e9 / COSTS.double_buffered, rel=0.05
        )

    def test_latency_ordering(self):
        lat_seq = strategy_latency_ns(COSTS, BucketStrategy.SEQUENTIAL, 16384)
        lat_db = strategy_latency_ns(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384
        )
        # overlap buys throughput at the cost of per-query latency
        assert lat_db > lat_seq

    def test_timeline_monotone(self):
        run = PipelineSimulator(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384
        ).run(16)
        for t in run.timelines:
            assert t.t1_start <= t.t1_end <= t.t2_end <= t.t3_end <= t.t4_end
        completions = [t.completion for t in run.timelines]
        assert completions == sorted(completions)

    def test_gpu_never_overlaps_itself(self):
        run = PipelineSimulator(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384
        ).run(16)
        for a, b in zip(run.timelines, run.timelines[1:]):
            # bucket b's T2 starts after bucket a's T2 finished
            assert b.t2_end - COSTS.t2 >= a.t2_end - 1e-6

    def test_single_bucket(self):
        run = PipelineSimulator(COSTS, BucketStrategy.PIPELINED, 16384).run(1)
        assert run.makespan_ns == pytest.approx(COSTS.sequential)

    def test_throughput_property(self):
        run = PipelineSimulator(
            COSTS, BucketStrategy.SEQUENTIAL, 16384
        ).run(8)
        assert run.throughput_qps == pytest.approx(
            8 * 16384 * 1e9 / run.makespan_ns
        )

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PipelineSimulator(COSTS, BucketStrategy.SEQUENTIAL, 16384).run(0)
        with pytest.raises(ValueError):
            PipelineSimulator(COSTS, BucketStrategy.SEQUENTIAL, 16384,
                              buffers=0)

    def test_more_buffers_never_slower(self):
        q2 = strategy_throughput_qps(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384
        )
        run3 = PipelineSimulator(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384, buffers=3
        ).run(64)
        q3 = 16384 * 1e9 / run3.steady_state_bucket_ns
        assert q3 >= q2 * 0.99


class TestGpuBoundShape:
    """When the GPU dominates (T2 >> T4), pipelining gains less and
    double buffering converges to the T2 bound — the regular-tree
    behaviour in Fig 10."""

    GPU_BOUND = BucketCosts(t1=15e3, t2=120e3, t3=15e3, t4=30e3)

    def test_double_buffer_hits_t2(self):
        qps = strategy_throughput_qps(
            self.GPU_BOUND, BucketStrategy.DOUBLE_BUFFERED, 16384
        )
        assert qps == pytest.approx(16384 * 1e9 / 120e3, rel=0.05)

    def test_pipelining_gain_smaller_when_gpu_bound(self):
        def gain(costs):
            seq = strategy_throughput_qps(
                costs, BucketStrategy.SEQUENTIAL, 16384
            )
            pipe = strategy_throughput_qps(
                costs, BucketStrategy.PIPELINED, 16384
            )
            return pipe / seq

        assert gain(self.GPU_BOUND) < gain(COSTS)


class TestPartialFinalBucket:
    def test_run_queries_counts_real_queries(self):
        sim = PipelineSimulator(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, bucket_size=16384
        )
        run = sim.run_queries(16384 + 100)
        assert len(run.timelines) == 2
        assert run.timelines[0].queries is None
        assert run.timelines[-1].queries == 100
        assert run.total_queries == 16384 + 100

    def test_throughput_not_overcounted(self):
        sim = PipelineSimulator(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, bucket_size=16384
        )
        partial = sim.run_queries(16384 + 1)
        full = sim.run_queries(2 * 16384)
        # same makespan (the tail pads to a full buffer slot), but the
        # partial run carries barely more than half the queries
        assert partial.makespan_ns == full.makespan_ns
        ratio = partial.throughput_qps / full.throughput_qps
        assert ratio == pytest.approx((16384 + 1) / (2 * 16384))

    def test_exact_multiple_has_no_partial_bucket(self):
        sim = PipelineSimulator(
            COSTS, BucketStrategy.PIPELINED, bucket_size=1024
        )
        run = sim.run_queries(3 * 1024)
        assert all(t.queries is None for t in run.timelines)
        assert run.total_queries == 3 * 1024

    def test_single_partial_bucket(self):
        sim = PipelineSimulator(
            COSTS, BucketStrategy.SEQUENTIAL, bucket_size=1024
        )
        run = sim.run_queries(10)
        assert len(run.timelines) == 1
        assert run.total_queries == 10
        assert run.throughput_qps == pytest.approx(10 * 1e9 / run.makespan_ns)

    def test_run_queries_validates(self):
        sim = PipelineSimulator(
            COSTS, BucketStrategy.SEQUENTIAL, bucket_size=1024
        )
        with pytest.raises(ValueError):
            sim.run_queries(0)


class TestTimelinesExport:
    def test_timelines_df_shape_and_fields(self):
        run = PipelineSimulator(
            COSTS, BucketStrategy.DOUBLE_BUFFERED, 16384
        ).run(5)
        rows = run.timelines_df()
        assert len(rows) == 5
        expected_keys = {
            "index", "t1_start", "t1_end", "t2_end", "t3_end", "t4_end",
            "queries", "completion_ns", "avg_query_latency_ns",
        }
        for i, row in enumerate(rows):
            assert set(row) == expected_keys
            assert row["index"] == i
            assert row["queries"] == 16384
            assert row["completion_ns"] == row["t4_end"]
            assert (row["t1_start"] <= row["t1_end"] <= row["t2_end"]
                    <= row["t3_end"] <= row["t4_end"])

    def test_timelines_df_partial_final_bucket(self):
        sim = PipelineSimulator(COSTS, BucketStrategy.PIPELINED, 1000)
        rows = sim.run_queries(2500).timelines_df()
        assert [r["queries"] for r in rows] == [1000, 1000, 500]

    def test_timelines_df_matches_derived_metrics(self):
        run = PipelineSimulator(
            COSTS, BucketStrategy.SEQUENTIAL, 1000
        ).run(3)
        rows = run.timelines_df()
        assert max(r["completion_ns"] for r in rows) == run.makespan_ns
        mean = sum(r["avg_query_latency_ns"] for r in rows) / len(rows)
        assert mean == pytest.approx(run.mean_latency_ns)


class TestDegenerateRuns:
    """Empty / zero-query / zero-cost runs report 0.0, never divide by
    zero (regression tests for the PipelineRun stats bugfix)."""

    def test_empty_run_metrics_are_zero(self):
        run = PipelineRun(timelines=[], bucket_size=1024)
        assert run.makespan_ns == 0.0
        assert run.total_queries == 0
        assert run.throughput_qps == 0.0
        assert run.mean_latency_ns == 0.0
        assert run.latency_percentile_ns(50) == 0.0
        assert run.latency_percentile_ns(99) == 0.0
        assert run.timelines_df() == []

    def test_empty_run_percentile_still_validates(self):
        run = PipelineRun(timelines=[], bucket_size=1024)
        with pytest.raises(ValueError):
            run.latency_percentile_ns(0)
        with pytest.raises(ValueError):
            run.latency_percentile_ns(101)

    def test_zero_carried_queries(self):
        # a bucket that carried no queries: finite makespan, zero work
        t = BucketTimeline(
            index=0, t1_start=0.0, t1_end=10.0, t2_end=20.0,
            t3_end=30.0, t4_end=40.0, queries=0,
        )
        run = PipelineRun(timelines=[t], bucket_size=1024)
        assert run.total_queries == 0
        assert run.makespan_ns == 40.0
        assert run.throughput_qps == 0.0

    def test_zero_cost_model(self):
        # an all-zero cost model collapses the makespan to 0
        t = BucketTimeline(
            index=0, t1_start=0.0, t1_end=0.0, t2_end=0.0,
            t3_end=0.0, t4_end=0.0,
        )
        run = PipelineRun(timelines=[t], bucket_size=1024)
        assert run.makespan_ns == 0.0
        assert run.throughput_qps == 0.0
        assert run.mean_latency_ns == 0.0

    def test_normal_runs_unaffected(self):
        run = PipelineSimulator(COSTS, BucketStrategy.SEQUENTIAL, 1024).run(3)
        assert run.throughput_qps > 0.0
        assert run.mean_latency_ns > 0.0
        assert run.latency_percentile_ns(99) >= run.latency_percentile_ns(50)


def _run_with_latencies(latencies):
    """A PipelineRun whose per-bucket average-query latencies are
    exactly ``latencies`` (t1_start=0, t3_end=t4_end=L -> latency L)."""
    timelines = [
        BucketTimeline(index=i, t1_start=0.0, t1_end=0.0, t2_end=0.0,
                       t3_end=float(lat), t4_end=float(lat))
        for i, lat in enumerate(latencies)
    ]
    return PipelineRun(timelines=timelines, bucket_size=16)


class TestNearestRankPercentile:
    """Regression tests for the ceil-based nearest-rank percentile.

    The previous ``round``-based rank under-selected mid-ranks
    (banker's rounding: round(2.5) == 2, so p=50 on n=5 returned the
    2nd-smallest instead of the median) and only reached index 0 for
    small percentiles through clamping.
    """

    @pytest.mark.parametrize("n", [1, 2, 3])
    @pytest.mark.parametrize("p", [1, 50, 99, 100])
    def test_small_n_matches_ceil_rank(self, n, p):
        lats = [10.0 * (i + 1) for i in range(n)]
        run = _run_with_latencies(lats)
        import math
        expected = lats[math.ceil(p / 100 * n) - 1]
        assert run.latency_percentile_ns(p) == expected

    def test_p100_is_max(self):
        run = _run_with_latencies([30.0, 10.0, 20.0])
        assert run.latency_percentile_ns(100) == 30.0

    def test_p50_n5_is_true_median(self):
        # the round-based rank returned 20.0 here (banker's rounding)
        run = _run_with_latencies([10.0, 20.0, 30.0, 40.0, 50.0])
        assert run.latency_percentile_ns(50) == 30.0

    def test_small_percentile_is_minimum(self):
        run = _run_with_latencies([10.0, 20.0, 30.0])
        assert run.latency_percentile_ns(1) == 10.0

    def test_nearest_rank_index_direct(self):
        assert nearest_rank_index(50, 2) == 0
        assert nearest_rank_index(50, 5) == 2
        assert nearest_rank_index(99, 2) == 1
        assert nearest_rank_index(100, 7) == 6
        assert nearest_rank_index(1, 1000) == 9
        with pytest.raises(ValueError):
            nearest_rank_index(0, 3)
        with pytest.raises(ValueError):
            nearest_rank_index(101, 3)
        with pytest.raises(ValueError):
            nearest_rank_index(50, 0)
