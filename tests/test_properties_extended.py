"""Second wave of property-based tests: CSS-tree, merge updates,
framework split-equivalence, pipeline-simulator invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import BucketStrategy, PipelineSimulator
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.platform.costmodel import BucketCosts

SLOW = settings(
    max_examples=30, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

key_lists = st.lists(
    st.integers(min_value=0, max_value=2**62),
    min_size=1, max_size=150, unique=True,
)


class TestCssProperties:
    @given(keys=key_lists)
    @SLOW
    def test_css_is_faithful_map(self, keys):
        values = [k % 811 for k in keys]
        tree = CssTree(keys, values)
        model = dict(zip(keys, values))
        for k in keys:
            assert tree.lookup(k, instrument=False) == model[k]

    @given(keys=key_lists, lo=st.integers(0, 2**62),
           hi=st.integers(0, 2**62))
    @SLOW
    def test_css_range_matches_filter(self, keys, lo, hi):
        tree = CssTree(keys, keys)
        lo, hi = min(lo, hi), max(lo, hi)
        got = tree.range_query(lo, hi)
        assert [k for k, _v in got] == sorted(
            k for k in keys if lo <= k <= hi
        )

    @given(keys=key_lists, probe=st.integers(0, 2**62))
    @SLOW
    def test_css_agrees_with_btree(self, keys, probe):
        css = CssTree(keys, keys)
        bt = ImplicitCpuBPlusTree(keys, keys)
        assert (css.lookup(probe, instrument=False)
                == bt.lookup(probe, instrument=False))


class TestMergeProperties:
    @given(
        base=key_lists,
        upserts=st.lists(
            st.tuples(st.integers(0, 2**62), st.integers(0, 1000)),
            max_size=60,
            unique_by=lambda t: t[0],
        ),
        deletes=st.lists(st.integers(0, 2**62), max_size=30, unique=True),
    )
    @SLOW
    def test_merge_update_matches_dict_model(self, base, upserts, deletes):
        tree = ImplicitCpuBPlusTree(base, base)
        # semantics: deletes remove, upserts insert/overwrite; a key in
        # both batches ends up inserted (upsert wins)
        model = dict(zip(base, base))
        for k in deletes:
            model.pop(k, None)
        for k, v in upserts:
            model[k] = v
        up_keys = [k for k, _v in upserts]
        up_vals = [v for _k, v in upserts]
        try:
            tree.merge_update(up_keys, up_vals, deletes)
        except ValueError:
            assert not model  # only an emptying merge may raise
            return
        assert dict(tree.items()) == model

    @given(base=key_lists)
    @SLOW
    def test_merge_noop_preserves_contents(self, base):
        tree = ImplicitCpuBPlusTree(base, base)
        before = tree.items()
        tree.merge_update()
        assert tree.items() == before


class TestPipelineProperties:
    costs = st.builds(
        BucketCosts,
        t1=st.floats(1e3, 1e5),
        t2=st.floats(1e3, 5e5),
        t3=st.floats(1e3, 1e5),
        t4=st.floats(1e3, 5e5),
    )

    @given(c=costs)
    @SLOW
    def test_strategy_ordering_always_holds(self, c):
        """Overlap can never hurt steady-state throughput."""
        def qps(strategy):
            sim = PipelineSimulator(c, strategy, 16384)
            return 16384 * 1e9 / sim.run(48).steady_state_bucket_ns

        seq = qps(BucketStrategy.SEQUENTIAL)
        pipe = qps(BucketStrategy.PIPELINED)
        db = qps(BucketStrategy.DOUBLE_BUFFERED)
        assert pipe >= seq * 0.999
        assert db >= pipe * 0.999

    @given(c=costs, n=st.integers(1, 40))
    @SLOW
    def test_timelines_always_monotone(self, c, n):
        run = PipelineSimulator(c, BucketStrategy.DOUBLE_BUFFERED,
                                16384).run(n)
        for t in run.timelines:
            assert (t.t1_start <= t.t1_end <= t.t2_end
                    <= t.t3_end <= t.t4_end)
        completions = [t.completion for t in run.timelines]
        assert completions == sorted(completions)

    @given(c=costs)
    @SLOW
    def test_throughput_never_exceeds_bottleneck(self, c):
        sim = PipelineSimulator(c, BucketStrategy.DOUBLE_BUFFERED, 16384)
        qps = 16384 * 1e9 / sim.run(48).steady_state_bucket_ns
        bottleneck = 16384 * 1e9 / max(c.t2, c.t4)
        assert qps <= bottleneck * 1.001

    @given(c=costs, p=st.floats(1.0, 100.0))
    @SLOW
    def test_percentiles_monotone(self, c, p):
        run = PipelineSimulator(c, BucketStrategy.PIPELINED, 16384).run(16)
        lo = run.latency_percentile_ns(min(p, 50.0))
        hi = run.latency_percentile_ns(max(p, 50.0))
        assert lo <= hi
