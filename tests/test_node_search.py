"""Node-search algorithms: all must agree with the reference semantics.

The contract (section 5.3): return the number of keys strictly smaller
than the query == the minimum i with ``query <= node[i]``.
"""

import numpy as np
import pytest

from repro.cpu.node_search import (
    COMPUTE_CYCLES,
    NodeSearchAlgorithm,
    get_search_function,
    hierarchical_simd_search,
    linear_simd_search,
    search_leaf_line,
    sequential_search,
)
from repro.keys import KEY32, KEY64
from repro.memsim.metrics import AccessCounters

ALGOS = [sequential_search, linear_simd_search, hierarchical_simd_search]


def reference(keys, query):
    return int(sum(1 for k in keys if int(k) < query))


def make_node64(rng, filled=8):
    keys = sorted(rng.choice(2**60, size=filled, replace=False).tolist())
    keys += [KEY64.max_value] * (8 - filled)
    return keys


def make_node32(rng, filled=16):
    keys = sorted(rng.choice(2**30, size=filled, replace=False).tolist())
    keys += [KEY32.max_value] * (16 - filled)
    return keys


class TestAgreement64:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_random_nodes_random_queries(self, algo):
        rng = np.random.default_rng(1)
        for _ in range(50):
            node = make_node64(rng)
            for query in rng.choice(2**61, size=8).tolist():
                assert algo(node, query) == reference(node, query)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_exact_key_hits(self, algo):
        rng = np.random.default_rng(2)
        node = make_node64(rng)
        for i, key in enumerate(node):
            assert algo(node, int(key)) == i

    @pytest.mark.parametrize("algo", ALGOS)
    def test_query_below_all(self, algo):
        node = [10, 20, 30, 40, 50, 60, 70, 80]
        assert algo(node, 1) == 0

    @pytest.mark.parametrize("algo", ALGOS)
    def test_query_above_all(self, algo):
        node = [10, 20, 30, 40, 50, 60, 70, 80]
        assert algo(node, 99) == 8

    @pytest.mark.parametrize("algo", ALGOS)
    def test_padded_node_routes_to_first_sentinel(self, algo):
        rng = np.random.default_rng(3)
        node = make_node64(rng, filled=3)
        huge = int(node[2]) + 1
        assert algo(node, huge) == 3

    @pytest.mark.parametrize("algo", ALGOS)
    def test_boundary_positions_hierarchical_parts(self, algo):
        """Queries straddling node[2] and node[5] (the hierarchical
        algorithm's part boundaries) must still agree."""
        node = [10, 20, 30, 40, 50, 60, 70, 80]
        for q in (29, 30, 31, 59, 60, 61):
            assert algo(node, q) == reference(node, q)


class TestAgreement32:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_random_nodes(self, algo):
        rng = np.random.default_rng(4)
        for _ in range(30):
            node = make_node32(rng)
            for query in rng.choice(2**31, size=6).tolist():
                assert algo(node, query) == reference(node, query)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_above_all_returns_16(self, algo):
        node = list(range(1, 17))
        assert algo(node, 100) == 16


class TestLeafSearch:
    def test_agreement_on_leaf_lines(self):
        rng = np.random.default_rng(5)
        for algo in NodeSearchAlgorithm:
            for filled in (1, 2, 4):
                keys = sorted(rng.choice(1000, size=filled,
                                         replace=False).tolist())
                keys += [KEY64.max_value] * (4 - filled)
                for q in rng.choice(1100, size=8).tolist():
                    got = search_leaf_line(keys, q, algorithm=algo)
                    assert got == reference(keys, q)

    def test_counters_record_work(self):
        counters = AccessCounters()
        search_leaf_line([1, 2, 3, 4], 3, counters)
        assert counters.key_comparisons == 4
        assert counters.simd_ops > 0


class TestCounters:
    def test_sequential_counts_only_inspected_keys(self):
        counters = AccessCounters()
        node = [10, 20, 30, 40, 50, 60, 70, 80]
        sequential_search(node, 25, counters)
        # scans 10, 20, 30 then stops
        assert counters.key_comparisons == 3

    def test_linear_counts_all_keys_and_simd_ops(self):
        counters = AccessCounters()
        node = [10, 20, 30, 40, 50, 60, 70, 80]
        linear_simd_search(node, 25, counters)
        assert counters.key_comparisons == 8
        assert counters.simd_ops == 8

    def test_hierarchical_uses_fewer_ops_than_linear(self):
        c_lin, c_hier = AccessCounters(), AccessCounters()
        node = [10, 20, 30, 40, 50, 60, 70, 80]
        linear_simd_search(node, 45, c_lin)
        hierarchical_simd_search(node, 45, c_hier)
        assert c_hier.simd_ops < c_lin.simd_ops
        assert c_hier.key_comparisons < c_lin.key_comparisons


class TestDispatchAndCosts:
    def test_get_search_function_roundtrip(self):
        for algo in NodeSearchAlgorithm:
            fn = get_search_function(algo)
            assert callable(fn)

    def test_compute_cycles_ordering(self):
        # hierarchical < linear < sequential (Fig 8's finding)
        assert (COMPUTE_CYCLES[NodeSearchAlgorithm.HIERARCHICAL_SIMD]
                < COMPUTE_CYCLES[NodeSearchAlgorithm.LINEAR_SIMD]
                < COMPUTE_CYCLES[NodeSearchAlgorithm.SEQUENTIAL])

    def test_wrong_node_size_rejected(self):
        with pytest.raises(ValueError):
            linear_simd_search([1, 2, 3], 2)
        with pytest.raises(ValueError):
            hierarchical_simd_search(list(range(12)), 2)
