"""The threaded overlap engine (DESIGN.md §9).

Everything here runs real worker threads, so the whole module carries
the ``concurrency`` marker — CI runs it under a hard job timeout as a
deadlock canary.  The properties verified:

* **bit-identity** — every topology returns exactly the serial
  :class:`~repro.core.batching.BatchingEngine`'s output, with exactly
  the serial modeled device counters, for random trees, query streams
  (duplicates included) and worker counts;
* **fault determinism** — under an active :class:`FaultPlan` the
  engine raises the same fault as the serial path with the same
  injector schedule and the same counters (the in-flight buckets drain
  before the raise);
* **no deadlocks** — exceptions thrown mid-bucket from either stage,
  with the smallest possible queues, abort the run promptly with every
  worker joined;
* **resilience integration** — a :class:`ResilientHBPlusTree` serving
  through the engine keeps returning correct values while degrading
  and recovering.
"""

import threading
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.batching import BatchingEngine
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.overlap import OverlappedEngine, OverlapStats, QueueStats
from repro.core.resilience import ResilienceConfig, ResilientHBPlusTree
from repro.faults import FaultInjector, FaultPlan
from repro.platform.configs import machine_m1
from repro.workloads.generators import generate_dataset

pytestmark = pytest.mark.concurrency


def device_counters(tree):
    c = tree.device.memory.counters
    return (
        int(tree.device.kernel_launches),
        int(c.transactions_64),
        int(c.bytes_moved),
    )


def build_tree(n_keys, seed, implicit=False):
    keys, values = generate_dataset(n_keys, seed=seed)
    cls = ImplicitHBPlusTree if implicit else HBPlusTree
    return cls(keys, values, machine=machine_m1()), keys


def serial_reference(tree, queries, bucket):
    tree.device.reset_counters()
    engine = BatchingEngine(tree, bucket_size=bucket)
    out = engine.lookup_batch(queries)
    return out, device_counters(tree), engine.stats


class TestBitIdentity:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_keys=st.integers(200, 900),
        n_queries=st.integers(1, 500),
        bucket=st.sampled_from([32, 64, 128, 256]),
        strategy=st.sampled_from(["pipelined", "double_buffered"]),
        gpu_workers=st.integers(1, 3),
        cpu_workers=st.integers(1, 4),
        implicit=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    def test_matches_serial_engine(
        self, n_keys, n_queries, bucket, strategy, gpu_workers,
        cpu_workers, implicit, seed,
    ):
        if strategy == "pipelined":
            gpu_workers = 1
        tree, keys = build_tree(n_keys, seed, implicit=implicit)
        rng = np.random.default_rng(seed + 1)
        # duplicate-heavy mix of hits and misses
        queries = rng.choice(keys, size=n_queries, replace=True)
        miss_mask = rng.random(n_queries) < 0.2
        queries[miss_mask] = rng.integers(
            0, 2**40, size=int(miss_mask.sum()), dtype=np.uint64,
        )
        ref, ref_counters, ref_stats = serial_reference(tree, queries, bucket)

        tree.device.reset_counters()
        engine = OverlappedEngine(
            tree, bucket_size=bucket, strategy=strategy,
            gpu_workers=gpu_workers, cpu_workers=cpu_workers,
            cpu_chunk_min=16,
        )
        out = engine.lookup_batch(queries)
        np.testing.assert_array_equal(out, ref)
        assert device_counters(tree) == ref_counters
        assert engine.stats.buckets == ref_stats.buckets
        assert engine.stats.queries == ref_stats.queries
        assert engine.stats.unique == ref_stats.unique
        assert engine.stats.transactions == ref_stats.transactions

    def test_sequential_strategy_matches(self):
        tree, keys = build_tree(1500, seed=11)
        queries = np.concatenate([keys[:700], keys[:300]])
        ref, ref_counters, _ = serial_reference(tree, queries, 128)
        tree.device.reset_counters()
        engine = OverlappedEngine(tree, bucket_size=128, strategy="sequential")
        out = engine.lookup_batch(queries)
        np.testing.assert_array_equal(out, ref)
        assert device_counters(tree) == ref_counters

    def test_empty_batch_spawns_no_threads(self):
        tree, _keys = build_tree(300, seed=1)
        before = threading.active_count()
        out = OverlappedEngine(tree, bucket_size=64).lookup_batch([])
        assert out.shape == (0,)
        assert threading.active_count() == before

    def test_accepts_python_ints_and_narrow_dtypes(self):
        tree, keys = build_tree(400, seed=2)
        engine = OverlappedEngine(tree, bucket_size=64)
        ref = engine.lookup_batch(keys[:8])
        as_py = engine.lookup_batch([int(k) for k in keys[:8]])
        np.testing.assert_array_equal(as_py, ref)
        narrow = (keys[:8] % np.uint64(2**31)).astype(np.int32)
        ref_narrow = engine.lookup_batch(narrow.astype(np.uint64))
        np.testing.assert_array_equal(
            engine.lookup_batch(narrow), ref_narrow
        )
        with pytest.raises(OverflowError):
            engine.lookup_batch([-1])
        with pytest.raises(TypeError):
            engine.lookup_batch(np.array([2.5]))


class TestFaultDeterminism:
    @settings(
        max_examples=6, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        rate=st.sampled_from([0.05, 0.2, 0.5]),
        fault_seed=st.integers(0, 2**16),
        strategy=st.sampled_from(["pipelined", "double_buffered"]),
    )
    def test_same_fault_schedule_as_serial(self, rate, fault_seed, strategy):
        plan = FaultPlan(seed=fault_seed, kernel_fail=rate)
        keys, values = generate_dataset(1200, seed=5)
        queries = np.tile(keys[:256], 8)  # 16 buckets of 128

        def run(make_engine):
            tree = HBPlusTree(
                keys, values, machine=machine_m1(),
                injector=FaultInjector(plan),
            )
            tree.device.reset_counters()
            engine = make_engine(tree)
            try:
                out = engine.lookup_batch(queries)
                err = None
            except Exception as e:  # noqa: BLE001 - comparing fault types
                out, err = None, e
            return out, err, tree.injector.schedule(), device_counters(tree)

        s_out, s_err, s_sched, s_counters = run(
            lambda t: BatchingEngine(t, bucket_size=128)
        )
        o_out, o_err, o_sched, o_counters = run(
            lambda t: OverlappedEngine(
                t, bucket_size=128, strategy=strategy, cpu_workers=2,
            )
        )
        assert (s_err is None) == (o_err is None)
        if s_err is not None:
            assert type(o_err) is type(s_err)
            assert str(o_err) == str(s_err)
        else:
            np.testing.assert_array_equal(o_out, s_out)
        assert o_sched == s_sched
        assert o_counters == s_counters


class TestShutdown:
    """Exceptions mid-bucket with the tiniest queues must not deadlock."""

    TIMEOUT_S = 30.0

    def _run_expecting(self, tree, queries, exc_type, **engine_kw):
        before = threading.active_count()
        engine = OverlappedEngine(tree, queue_depth=1, **engine_kw)
        t0 = time.perf_counter()
        with pytest.raises(exc_type):
            engine.lookup_batch(queries)
        elapsed = time.perf_counter() - t0
        assert elapsed < self.TIMEOUT_S, "shutdown took pathologically long"
        # every worker joined before lookup_batch raised
        deadline = time.time() + 5.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.01)
        assert threading.active_count() == before

    def test_cpu_stage_exception_mid_bucket(self, monkeypatch):
        tree, keys = build_tree(1000, seed=7)
        queries = np.tile(keys[:128], 16)
        calls = []
        real = tree.cpu_finish_bucket

        def boom(sorted_unique, codes):
            calls.append(1)
            if len(calls) == 3:
                raise RuntimeError("leaf stage blew up")
            return real(sorted_unique, codes)

        monkeypatch.setattr(tree, "cpu_finish_bucket", boom)
        self._run_expecting(
            tree, queries, RuntimeError, bucket_size=64,
            strategy="double_buffered", gpu_workers=2, cpu_workers=3,
            cpu_chunk_min=8,
        )

    def test_gpu_stage_exception_mid_bucket(self, monkeypatch):
        tree, keys = build_tree(1000, seed=8)
        queries = np.tile(keys[:128], 16)
        calls = []
        real = tree.gpu_descend

        def boom(q, kernel=None):
            calls.append(1)
            if len(calls) == 2:
                raise RuntimeError("descent blew up")
            return real(q, kernel=kernel)

        monkeypatch.setattr(tree, "gpu_descend", boom)
        self._run_expecting(
            tree, queries, RuntimeError, bucket_size=64,
            strategy="pipelined", cpu_workers=2,
        )

    def test_screening_fault_drains_before_raising(self):
        plan = FaultPlan(seed=3, kernel_fail=1.0)  # first launch faults
        keys, values = generate_dataset(600, seed=9)
        tree = HBPlusTree(
            keys, values, machine=machine_m1(), injector=FaultInjector(plan),
        )
        before = threading.active_count()
        engine = OverlappedEngine(tree, bucket_size=64, queue_depth=1)
        with pytest.raises(Exception) as info:
            engine.lookup_batch(np.tile(keys[:64], 4))
        assert "kernel_fail" in str(info.value)
        assert threading.active_count() == before


class TestConstruction:
    def test_pipelined_rejects_multiple_gpu_workers(self):
        tree, _ = build_tree(300, seed=4)
        with pytest.raises(ValueError):
            OverlappedEngine(tree, strategy="pipelined", gpu_workers=2)

    def test_worker_counts_validated(self):
        tree, _ = build_tree(300, seed=4)
        with pytest.raises(ValueError):
            OverlappedEngine(tree, gpu_workers=0)
        with pytest.raises(ValueError):
            OverlappedEngine(tree, cpu_workers=0)
        with pytest.raises(ValueError):
            OverlappedEngine(tree, queue_depth=0)

    def test_double_buffered_defaults_two_workers(self):
        tree, _ = build_tree(300, seed=4)
        engine = OverlappedEngine(tree)
        assert engine.gpu_workers == 2
        assert engine.queue_depth == 2

    def test_stats_reset_preserves_queue_capacity(self):
        stats = OverlapStats(
            gpu_queue=QueueStats(capacity=3), cpu_queue=QueueStats(capacity=5),
        )
        stats.buckets = 7
        stats.gpu_queue.sample(2)
        stats.reset()
        assert stats.buckets == 0
        assert stats.gpu_queue.capacity == 3
        assert stats.cpu_queue.capacity == 5
        assert stats.gpu_queue.samples == 0


class TestResilienceIntegration:
    def test_engine_backed_resilient_tree_stays_correct(self):
        keys, values = generate_dataset(1 << 11, seed=13)
        lut = {int(k): int(v) for k, v in zip(keys, values)}
        tree = HBPlusTree(keys, values, machine=machine_m1())
        injector = FaultInjector(FaultPlan.uniform(0.08, seed=31))
        engine = OverlappedEngine(
            tree, bucket_size=256, strategy="double_buffered", cpu_workers=2,
        )
        resilient = ResilientHBPlusTree(
            tree, injector=injector,
            config=ResilienceConfig(breaker_threshold=2, probe_interval=4),
            engine=engine,
        )
        before = threading.active_count()
        rng = np.random.default_rng(17)
        for _ in range(8):
            q = rng.choice(keys, size=512)
            out = resilient.lookup_batch(q)
            expected = np.asarray([lut[int(k)] for k in q], dtype=out.dtype)
            np.testing.assert_array_equal(out, expected)
        # faults degraded and recovered without leaking a single worker
        assert threading.active_count() == before

    def test_engine_must_wrap_same_tree(self):
        tree_a, _ = build_tree(300, seed=1)
        tree_b, _ = build_tree(300, seed=2)
        engine = OverlappedEngine(tree_b)
        with pytest.raises(ValueError):
            ResilientHBPlusTree(tree_a, engine=engine)


class TestBusyAccounting:
    """Busy-time accounting sanity (regression for the dispatch_busy
    double-count hazard): each timed region accumulates at exactly one
    site, so no single busy counter can exceed the measured wall time.
    """

    def _check(self, engine, queries):
        engine.lookup_batch(queries)
        s = engine.stats.snapshot()
        assert s["wall_ns"] > 0
        assert 0 <= s["dispatch_busy_ns"] <= s["wall_ns"]
        # gpu/cpu busy are summed over workers, so each is bounded by
        # workers * wall, not wall
        assert 0 <= s["gpu_busy_ns"] <= engine.gpu_workers * s["wall_ns"]
        assert 0 <= s["cpu_busy_ns"] <= engine.cpu_workers * s["wall_ns"]

    def test_sequential_busy_bounded_by_wall(self):
        tree, keys = build_tree(800, seed=21)
        queries = np.tile(keys[:128], 8)
        self._check(
            OverlappedEngine(tree, bucket_size=128, strategy="sequential"),
            queries,
        )

    def test_threaded_dispatch_busy_bounded_by_wall(self):
        tree, keys = build_tree(800, seed=22)
        queries = np.tile(keys[:128], 16)
        self._check(
            OverlappedEngine(
                tree, bucket_size=128, strategy="double_buffered",
                gpu_workers=2, cpu_workers=2,
            ),
            queries,
        )

    def test_dispatch_busy_accumulated_once_under_fault(self):
        # a launch fault used to risk booking the same timed region
        # twice (once in the fault branch, once on fall-through); the
        # single try/finally accumulation point makes that impossible
        plan = FaultPlan(seed=3, kernel_fail=1.0)  # every launch faults
        keys, values = generate_dataset(900, seed=23)
        tree = HBPlusTree(
            keys, values, machine=machine_m1(),
            injector=FaultInjector(plan),
        )
        engine = OverlappedEngine(
            tree, bucket_size=128, strategy="double_buffered",
            gpu_workers=2, cpu_workers=2,
        )
        with pytest.raises(Exception, match="kernel_fail"):
            engine.lookup_batch(np.tile(keys[:128], 8))
        s = engine.stats.snapshot()
        assert 0 <= s["dispatch_busy_ns"] <= s["wall_ns"]
