"""Memory-hierarchy simulator: allocator, TLB, cache, facade."""

import pytest

from repro.memsim.allocator import PageKind, SegmentAllocator
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.mainmem import MemorySystem, PageConfig
from repro.memsim.tlb import Tlb


class TestSegmentAllocator:
    def test_alignment_to_page(self):
        alloc = SegmentAllocator(small_page=4096, huge_page=1 << 20)
        seg = alloc.allocate("a", 100, PageKind.SMALL)
        assert seg.base % 4096 == 0
        huge = alloc.allocate("b", 100, PageKind.HUGE)
        assert huge.base % (1 << 20) == 0

    def test_segments_do_not_overlap(self):
        alloc = SegmentAllocator()
        a = alloc.allocate("a", 10_000, PageKind.SMALL)
        b = alloc.allocate("b", 10_000, PageKind.SMALL)
        assert a.end <= b.base

    def test_duplicate_name_rejected(self):
        alloc = SegmentAllocator()
        alloc.allocate("a", 10, PageKind.SMALL)
        with pytest.raises(ValueError):
            alloc.allocate("a", 10, PageKind.SMALL)

    def test_zero_size_rejected(self):
        alloc = SegmentAllocator()
        with pytest.raises(ValueError):
            alloc.allocate("z", 0, PageKind.SMALL)

    def test_free_and_contains(self):
        alloc = SegmentAllocator()
        alloc.allocate("a", 10, PageKind.SMALL)
        assert "a" in alloc
        alloc.free("a")
        assert "a" not in alloc
        with pytest.raises(KeyError):
            alloc.free("a")

    def test_address_of_bounds(self):
        alloc = SegmentAllocator()
        seg = alloc.allocate("a", 100, PageKind.SMALL)
        assert seg.address_of(0) == seg.base
        assert seg.address_of(99) == seg.base + 99
        with pytest.raises(ValueError):
            seg.address_of(100)

    def test_segment_for(self):
        alloc = SegmentAllocator()
        a = alloc.allocate("a", 100, PageKind.SMALL)
        assert alloc.segment_for(a.base + 5).name == "a"
        with pytest.raises(KeyError):
            alloc.segment_for(0)

    def test_huge_multiple_of_small_required(self):
        with pytest.raises(ValueError):
            SegmentAllocator(small_page=4096, huge_page=5000)

    def test_num_pages(self):
        alloc = SegmentAllocator(small_page=4096, huge_page=1 << 20)
        seg = alloc.allocate("a", 4096 * 3 + 1, PageKind.SMALL)
        assert seg.num_pages == 4


class TestTlb:
    def test_hit_after_fill(self):
        tlb = Tlb(entries_small=4, stlb_entries=0, entries_huge=2)
        assert not tlb.translate(7, PageKind.SMALL)  # cold miss
        assert tlb.translate(7, PageKind.SMALL)  # hit

    def test_lru_eviction_small(self):
        tlb = Tlb(entries_small=2, stlb_entries=0, entries_huge=1)
        tlb.translate(1, PageKind.SMALL)
        tlb.translate(2, PageKind.SMALL)
        tlb.translate(3, PageKind.SMALL)  # evicts 1
        assert not tlb.translate(1, PageKind.SMALL)

    def test_separate_pools_per_page_kind(self):
        tlb = Tlb(entries_small=1, stlb_entries=0, entries_huge=1)
        tlb.translate(1, PageKind.SMALL)
        tlb.translate(1, PageKind.HUGE)
        # the huge entry did not evict the small one
        assert tlb.translate(1, PageKind.SMALL)

    def test_miss_counters_per_kind(self):
        tlb = Tlb()
        tlb.translate(1, PageKind.SMALL)
        tlb.translate(2, PageKind.HUGE)
        assert tlb.counters.tlb_misses_small == 1
        assert tlb.counters.tlb_misses_huge == 1

    def test_four_huge_entries_default(self):
        # "only four entries in the last level TLB for 1GB pages"
        tlb = Tlb()
        assert tlb.huge_reach == 4
        for page in range(4):
            tlb.translate(page, PageKind.HUGE)
        for page in range(4):
            assert tlb.translate(page, PageKind.HUGE)
        tlb.translate(99, PageKind.HUGE)
        assert not tlb.translate(0, PageKind.HUGE)  # evicted

    def test_flush(self):
        tlb = Tlb()
        tlb.translate(1, PageKind.SMALL)
        tlb.flush()
        assert not tlb.translate(1, PageKind.SMALL)


class TestCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(1024, associativity=2, line_size=64)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(63)  # same line

    def test_different_line_misses(self):
        cache = SetAssociativeCache(1024, associativity=2, line_size=64)
        cache.access(0)
        assert not cache.access(64)

    def test_lru_within_set(self):
        # 2-way, 8 sets: lines 0, 8, 16 map to set 0
        cache = SetAssociativeCache(1024, associativity=2, line_size=64)
        cache.access(0)
        cache.access(8 * 64)
        cache.access(16 * 64)  # evicts line 0
        assert not cache.access(0)
        assert cache.access(16 * 64)

    def test_capacity_lines(self):
        cache = SetAssociativeCache(64 * 128, associativity=16, line_size=64)
        assert cache.capacity_lines == 128

    def test_counters(self):
        cache = SetAssociativeCache(1024)
        cache.access(0)
        cache.access(0)
        assert cache.counters.cache_misses == 1
        assert cache.counters.cache_hits == 1

    def test_contains_does_not_disturb(self):
        cache = SetAssociativeCache(1024, associativity=2, line_size=64)
        assert not cache.contains(0)
        cache.access(0)
        before = cache.counters.line_accesses
        assert cache.contains(0)
        assert cache.counters.line_accesses == before

    def test_flush(self):
        cache = SetAssociativeCache(1024)
        cache.access(0)
        cache.flush()
        assert not cache.contains(0)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(0)


class TestMemorySystem:
    def test_touch_counts_lines(self):
        mem = MemorySystem(llc_bytes=1 << 16)
        seg = mem.allocate("s", 4096, PageKind.SMALL)
        misses = mem.touch(seg, 0, 64)
        assert misses == 1
        assert mem.counters.line_accesses == 1

    def test_touch_spanning_lines(self):
        mem = MemorySystem(llc_bytes=1 << 16)
        seg = mem.allocate("s", 4096, PageKind.SMALL)
        mem.touch(seg, 32, 64)  # straddles two lines
        assert mem.counters.line_accesses == 2

    def test_touch_line_then_hit(self):
        mem = MemorySystem(llc_bytes=1 << 16)
        seg = mem.allocate("s", 4096, PageKind.SMALL)
        assert mem.touch_line(seg, 3) == 1
        assert mem.touch_line(seg, 3) == 0
        assert mem.counters.cache_hits == 1

    def test_touch_out_of_segment_rejected(self):
        mem = MemorySystem()
        seg = mem.allocate("s", 128, PageKind.SMALL)
        with pytest.raises(ValueError):
            mem.touch(seg, 100, 64)
        with pytest.raises(ValueError):
            mem.touch(seg, 0, 0)

    def test_tlb_charged_per_page_kind(self):
        mem = MemorySystem(llc_bytes=1 << 16, huge_page=1 << 20)
        small = mem.allocate("s", 4096, PageKind.SMALL)
        huge = mem.allocate("h", 4096, PageKind.HUGE)
        mem.touch_line(small, 0)
        mem.touch_line(huge, 0)
        assert mem.counters.tlb_misses_small == 1
        assert mem.counters.tlb_misses_huge == 1

    def test_reset_keeps_cache_contents(self):
        mem = MemorySystem(llc_bytes=1 << 16)
        seg = mem.allocate("s", 4096, PageKind.SMALL)
        mem.touch_line(seg, 0)
        mem.reset_counters()
        assert mem.counters.line_accesses == 0
        assert mem.touch_line(seg, 0) == 0  # still cached

    def test_flush_empties_hierarchy(self):
        mem = MemorySystem(llc_bytes=1 << 16)
        seg = mem.allocate("s", 4096, PageKind.SMALL)
        mem.touch_line(seg, 0)
        mem.flush()
        assert mem.touch_line(seg, 0) == 1

    def test_from_spec(self, m1):
        mem = MemorySystem.from_spec(m1.cpu)
        assert mem.cache.size_bytes <= m1.cpu.llc_bytes
        assert mem.allocator.huge_page == m1.cpu.huge_page


def _full_state(mem):
    """Every observable of the hierarchy: counters, cache-set key
    order, TLB pool key order, prefetcher stream table + issue count."""
    return (
        dict(vars(mem.counters)),
        dict(vars(mem.cache.counters)),
        dict(vars(mem.tlb.counters)),
        [list(s.keys()) for s in mem.cache._sets],
        list(mem.tlb._small._entries.keys()),
        list(mem.tlb._huge._entries.keys()),
        None if mem.prefetcher is None else (
            list(mem.prefetcher._streams.items()),
            mem.prefetcher.issued,
        ),
    )


class TestTouchLinesEquivalence:
    """``touch_lines`` promises to be counter- AND state-identical to
    a per-index ``touch_line`` loop — the run-wholesale fast path and
    the per-line fallback are both checked against the loop on every
    observable, across geometries and batch shapes."""

    GEOMETRIES = [
        dict(llc_bytes=1 << 16),
        dict(llc_bytes=4096, associativity=4),
        dict(llc_bytes=2048, associativity=2),
        dict(llc_bytes=4096, associativity=4, prefetch_degree=0),
        dict(llc_bytes=4096, associativity=4, prefetch_degree=3),
    ]

    @staticmethod
    def _batches():
        import numpy as np

        rng = np.random.default_rng(41)
        fixed = [
            [0],                                 # cold single line
            [0],                                 # warm re-touch
            list(range(10, 74)),                 # one long run (a leaf)
            list(range(74, 80)),                 # +1 continuation batch
            list(range(200, 264)) + list(range(500, 506)),
            list(range(505, 511)),               # overlapping re-walk
            [7, 7, 7, 9],                        # duplicates
            list(range(120, 110, -1)),           # descending
            list(range(0, 1024, 40)),            # strided
            [1022, 1023],                        # runs at segment end
        ]
        for _ in range(6):
            start = int(rng.integers(0, 900))
            fixed.append(
                (start + rng.integers(0, 90, size=48)).tolist()
            )
        return fixed

    @pytest.mark.parametrize("geom", range(len(GEOMETRIES)))
    def test_state_and_counters_match_per_line_loop(self, geom):
        import numpy as np

        kwargs = self.GEOMETRIES[geom]
        ref = MemorySystem(**kwargs)
        fast = MemorySystem(**kwargs)
        seg_ref = ref.allocate("s", 1 << 16, PageKind.SMALL)
        seg_fast = fast.allocate("s", 1 << 16, PageKind.SMALL)
        for batch in self._batches():
            m_ref = sum(ref.touch_line(seg_ref, i) for i in batch)
            m_fast = fast.touch_lines(seg_fast, np.asarray(batch))
            assert m_fast == m_ref
            assert _full_state(fast) == _full_state(ref)

    def test_huge_pages_and_cross_segment_streams(self):
        import numpy as np

        ref = MemorySystem(llc_bytes=4096, associativity=4,
                           huge_page=1 << 20)
        fast = MemorySystem(llc_bytes=4096, associativity=4,
                            huge_page=1 << 20)
        segs_ref = [ref.allocate("a", 1 << 15, PageKind.SMALL),
                    ref.allocate("b", 1 << 15, PageKind.HUGE)]
        segs_fast = [fast.allocate("a", 1 << 15, PageKind.SMALL),
                     fast.allocate("b", 1 << 15, PageKind.HUGE)]
        rng = np.random.default_rng(43)
        for trial in range(12):
            which = int(rng.integers(0, 2))
            start = int(rng.integers(0, 400))
            batch = list(range(start, start + int(rng.integers(1, 70))))
            m_ref = sum(
                ref.touch_line(segs_ref[which], i) for i in batch
            )
            m_fast = fast.touch_lines(segs_fast[which],
                                      np.asarray(batch))
            assert m_fast == m_ref
            assert _full_state(fast) == _full_state(ref)

    def test_empty_batch_is_a_no_op(self):
        import numpy as np

        mem = MemorySystem(llc_bytes=1 << 16)
        seg = mem.allocate("s", 4096, PageKind.SMALL)
        state = _full_state(mem)
        assert mem.touch_lines(seg, np.asarray([], dtype=np.int64)) == 0
        assert _full_state(mem) == state

    def test_out_of_segment_rejected(self):
        import numpy as np

        mem = MemorySystem(llc_bytes=1 << 16)
        seg = mem.allocate("s", 4096, PageKind.SMALL)
        with pytest.raises(ValueError):
            mem.touch_lines(seg, np.asarray([0, 64]))


class TestPageConfig:
    def test_small_small(self):
        assert PageConfig.SMALL_SMALL.inner_kind is PageKind.SMALL
        assert PageConfig.SMALL_SMALL.leaf_kind is PageKind.SMALL

    def test_huge_small(self):
        assert PageConfig.HUGE_SMALL.inner_kind is PageKind.HUGE
        assert PageConfig.HUGE_SMALL.leaf_kind is PageKind.SMALL

    def test_huge_huge(self):
        assert PageConfig.HUGE_HUGE.inner_kind is PageKind.HUGE
        assert PageConfig.HUGE_HUGE.leaf_kind is PageKind.HUGE
