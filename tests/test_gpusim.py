"""GPU simulator: device memory, coalescing, transfers, SIMT core."""

import numpy as np
import pytest

from repro.gpusim.device import GpuDevice
from repro.gpusim.memory import DeviceMemory, coalesce
from repro.gpusim.simt import KernelLaunch, SharedMemory
from repro.gpusim.transfer import PcieLink
from repro.platform.configs import PcieSpec


class TestCoalesce:
    def test_single_8byte_access_is_one_32b_txn(self):
        txns = coalesce([(0, 8)])
        assert txns == [(0, 32)]

    def test_full_warp_contiguous_64_bytes(self):
        # 8 lanes x 8 bytes, contiguous and aligned -> one 64B txn
        ranges = [(i * 8, 8) for i in range(8)]
        txns = coalesce(ranges)
        assert txns == [(0, 64)]

    def test_contiguous_128_bytes(self):
        ranges = [(i * 8, 8) for i in range(16)]
        txns = coalesce(ranges)
        assert txns == [(0, 128)]

    def test_scattered_accesses_one_txn_each(self):
        ranges = [(0, 8), (1024, 8), (4096, 8)]
        txns = coalesce(ranges)
        assert len(txns) == 3
        assert all(size == 32 for _s, size in txns)

    def test_worst_case_32_separate_transactions(self):
        # the paper: "in the worst case, each access is translated into
        # 32 separate memory transactions"
        ranges = [(i * 256, 8) for i in range(32)]
        assert len(coalesce(ranges)) == 32

    def test_covering_invariant(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            ranges = [
                (int(o), int(s)) for o, s in zip(
                    rng.integers(0, 4096, 8), rng.integers(1, 64, 8)
                )
            ]
            txns = coalesce(ranges)
            covered = set()
            for start, size in txns:
                assert start % size == 0, "transactions must be aligned"
                covered.update(range(start, start + size))
            for start, length in ranges:
                assert all(b in covered for b in range(start, start + length))

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            coalesce([(0, 0)])


class TestDeviceMemory:
    def test_alloc_and_get(self):
        mem = DeviceMemory(1 << 20)
        buf = mem.alloc("a", (16,), np.uint64)
        assert mem.get("a") is buf
        assert buf.nbytes == 128

    def test_capacity_enforced(self):
        mem = DeviceMemory(1024)
        with pytest.raises(MemoryError):
            mem.alloc("big", (1024,), np.uint64)

    def test_capacity_wall_is_the_papers_motivation(self, m1):
        """A GPU-resident tree beyond device memory must fail — the
        limitation HB+-tree exists to avoid."""
        mem = DeviceMemory(m1.gpu.device_mem_bytes)
        elems = m1.gpu.device_mem_bytes // 8 + 1
        with pytest.raises(MemoryError):
            mem.alloc("tree", (elems,), np.uint64)

    def test_upload_replaces(self):
        mem = DeviceMemory(1 << 20)
        mem.upload("a", np.arange(4, dtype=np.uint64))
        mem.upload("a", np.arange(8, dtype=np.uint64))
        assert mem.get("a").array.size == 8

    def test_upload_copies(self):
        mem = DeviceMemory(1 << 20)
        host = np.arange(4, dtype=np.uint64)
        mem.upload("a", host)
        host[0] = 99
        assert mem.get("a").array[0] == 0

    def test_free(self):
        mem = DeviceMemory(1 << 20)
        mem.alloc("a", (4,), np.uint64)
        mem.free("a")
        assert "a" not in mem
        with pytest.raises(KeyError):
            mem.free("a")

    def test_used_and_free_bytes(self):
        mem = DeviceMemory(1024)
        mem.alloc("a", (16,), np.uint64)
        assert mem.used_bytes == 128
        assert mem.free_bytes == 896

    def test_warp_access_counters(self):
        mem = DeviceMemory(1 << 20)
        n = mem.warp_access([(i * 8, 8) for i in range(8)])
        assert n == 1
        assert mem.counters.transactions_64 == 1
        assert mem.counters.bytes_moved == 64
        assert mem.counters.warp_accesses == 1


class TestPcieLink:
    def test_transfer_time_model(self):
        link = PcieLink(PcieSpec("x", bandwidth_gbs=10.0, t_init_ns=1000.0))
        # T = T_init + bytes / (bytes per ns)
        assert link.time_ns(10_000) == pytest.approx(1000.0 + 1000.0)

    def test_to_device_and_back(self):
        link = PcieLink(PcieSpec("x", bandwidth_gbs=10.0, t_init_ns=100.0))
        mem = DeviceMemory(1 << 20)
        host = np.arange(16, dtype=np.uint64)
        t = link.to_device(mem, "buf", host)
        assert t > 100.0
        got, t2 = link.to_host(mem.get("buf"))
        assert np.array_equal(got, host)
        assert link.stats.transfers == 2
        assert link.stats.bytes_to_device == host.nbytes
        assert link.stats.bytes_to_host == host.nbytes

    def test_partial_update(self):
        link = PcieLink(PcieSpec("x", bandwidth_gbs=10.0, t_init_ns=100.0))
        mem = DeviceMemory(1 << 20)
        link.to_device(mem, "buf", np.zeros(16, dtype=np.uint64))
        link.update_device(mem, "buf", np.asarray([7, 8], dtype=np.uint64),
                           offset_elems=4)
        arr = mem.get("buf").array
        assert arr[4] == 7 and arr[5] == 8 and arr[3] == 0

    def test_partial_update_bounds(self):
        link = PcieLink(PcieSpec("x", bandwidth_gbs=10.0, t_init_ns=100.0))
        mem = DeviceMemory(1 << 20)
        link.to_device(mem, "buf", np.zeros(4, dtype=np.uint64))
        with pytest.raises(ValueError):
            link.update_device(mem, "buf", np.zeros(2, dtype=np.uint64),
                               offset_elems=3)

    def test_negative_size_rejected(self):
        link = PcieLink(PcieSpec("x", bandwidth_gbs=10.0, t_init_ns=100.0))
        with pytest.raises(ValueError):
            link.time_ns(-1)


class TestSharedMemory:
    def test_store_load(self):
        sh = SharedMemory()
        sh.declare("f", (8,), np.int64)
        sh.store("f", 3, 7)
        assert sh.load("f", 3) == 7

    def test_no_conflict_distinct_banks(self):
        sh = SharedMemory(banks=32)
        sh.declare("f", (64,), np.int32)
        accesses = [("f", i) for i in range(32)]
        assert sh.conflict_degree(accesses) == 0

    def test_conflict_same_bank_distinct_words(self):
        sh = SharedMemory(banks=32)
        sh.declare("f", (128,), np.int32)
        accesses = [("f", 0), ("f", 32), ("f", 64)]  # all bank 0
        assert sh.conflict_degree(accesses) == 2

    def test_broadcast_same_word_no_conflict(self):
        sh = SharedMemory(banks=32)
        sh.declare("f", (8,), np.int32)
        accesses = [("f", 5)] * 10
        assert sh.conflict_degree(accesses) == 0


def _vector_add_kernel(ctx, a, b, out):
    i = ctx.block_idx * ctx.block_dim[0] + ctx.thread_idx[0]
    x = yield ("gld", a, i)
    y = yield ("gld", b, i)
    yield ("gst", out, i, x + y)


def _barrier_kernel(ctx, out):
    """Each thread writes, syncs, then reads its neighbour's value."""
    tid = ctx.thread_idx[0]
    n = ctx.block_dim[0]
    yield ("shst", "buf", tid, tid * 10)
    yield ("sync",)
    neighbour = yield ("shld", "buf", (tid + 1) % n)
    yield ("gst", out, ctx.block_idx * n + tid, neighbour)


def _divergent_kernel(ctx, out):
    tid = ctx.thread_idx[0]
    if tid % 2 == 0:
        v = yield ("gld", out, tid)
        yield ("gst", out, tid, v + 1)
    else:
        yield ("shst", "pad", 0, 1)
    yield ("sync",)


class TestSimtInterpreter:
    def test_vector_add(self):
        mem = DeviceMemory(1 << 20)
        a = mem.upload("a", np.arange(64, dtype=np.int64))
        b = mem.upload("b", np.arange(64, dtype=np.int64) * 2)
        out = mem.upload("out", np.zeros(64, dtype=np.int64))
        launch = KernelLaunch(mem, _vector_add_kernel, grid_dim=2,
                              block_dim=(32, 1))
        stats = launch.run(a, b, out)
        assert np.array_equal(out.array, np.arange(64) * 3)
        assert stats.threads == 64
        assert stats.global_transactions > 0

    def test_barrier_semantics(self):
        mem = DeviceMemory(1 << 20)
        out = mem.upload("out", np.zeros(8, dtype=np.int64))
        launch = KernelLaunch(
            mem, _barrier_kernel, grid_dim=1, block_dim=(8, 1),
            shared_decls={"buf": ((8,), np.int64)},
        )
        stats = launch.run(out)
        assert out.array.tolist() == [10, 20, 30, 40, 50, 60, 70, 0]
        assert stats.barriers >= 1

    def test_divergence_detected(self):
        mem = DeviceMemory(1 << 20)
        out = mem.upload("out", np.zeros(32, dtype=np.int64))
        launch = KernelLaunch(
            mem, _divergent_kernel, grid_dim=1, block_dim=(32, 1),
            shared_decls={"pad": ((1,), np.int64)},
        )
        stats = launch.run(out)
        assert stats.divergent_rounds > 0

    def test_coalesced_warp_load_single_txn(self):
        mem = DeviceMemory(1 << 20)
        a = mem.upload("a", np.arange(32, dtype=np.int32))
        b = mem.upload("b", np.arange(32, dtype=np.int32))
        out = mem.upload("out", np.zeros(32, dtype=np.int32))
        launch = KernelLaunch(mem, _vector_add_kernel, grid_dim=1,
                              block_dim=(32, 1))
        launch.run(a, b, out)
        # 32 lanes x 4 bytes = 128 contiguous bytes = 1 txn per load
        assert mem.counters.transactions_128 >= 2

    def test_invalid_dims_rejected(self):
        mem = DeviceMemory(1 << 20)
        with pytest.raises(ValueError):
            KernelLaunch(mem, _vector_add_kernel, 0, (32, 1))


class TestGpuDevice:
    def test_concurrent_queries(self, m1):
        dev = GpuDevice(m1.gpu)
        # GPU_Threads / T (section 5.3)
        assert dev.concurrent_queries(8) == m1.gpu.max_resident_threads // 8

    def test_concurrent_queries_validates(self, m1):
        dev = GpuDevice(m1.gpu)
        with pytest.raises(ValueError):
            dev.concurrent_queries(0)

    def test_launch_accumulates(self, m1):
        dev = GpuDevice(m1.gpu)
        a = dev.memory.upload("a", np.arange(32, dtype=np.int64))
        b = dev.memory.upload("b", np.arange(32, dtype=np.int64))
        out = dev.memory.upload("out", np.zeros(32, dtype=np.int64))
        dev.launch(_vector_add_kernel, 1, (32, 1), a, b, out)
        assert dev.kernel_launches == 1
        dev.reset_counters()
        assert dev.kernel_launches == 0


class TestPcieLinkEdgeCases:
    """Transfer validation and fault accounting."""

    def _link(self, injector=None):
        return PcieLink(
            PcieSpec("x", bandwidth_gbs=10.0, t_init_ns=100.0),
            injector=injector,
        )

    def test_zero_byte_transfer_rejected(self):
        link = self._link()
        with pytest.raises(ValueError):
            link.time_ns(0)
        mem = DeviceMemory(1 << 20)
        with pytest.raises(ValueError):
            link.to_device(mem, "buf", np.empty(0, dtype=np.uint64))

    def test_zero_size_partial_update_rejected(self):
        link = self._link()
        mem = DeviceMemory(1 << 20)
        link.to_device(mem, "buf", np.zeros(8, dtype=np.uint64))
        with pytest.raises(ValueError):
            link.update_device(mem, "buf", np.empty(0, dtype=np.uint64))

    def test_partial_update_dtype_mismatch_rejected(self):
        """No more silent casting: a host array of the wrong dtype is
        an error, not a lossy conversion."""
        link = self._link()
        mem = DeviceMemory(1 << 20)
        link.to_device(mem, "buf", np.zeros(8, dtype=np.uint64))
        with pytest.raises(ValueError, match="dtype"):
            link.update_device(
                mem, "buf", np.asarray([1.5], dtype=np.float64)
            )
        # the buffer was not touched
        assert mem.get("buf").array[0] == 0

    def test_partial_update_negative_offset_rejected(self):
        link = self._link()
        mem = DeviceMemory(1 << 20)
        link.to_device(mem, "buf", np.zeros(8, dtype=np.uint64))
        with pytest.raises(ValueError, match="offset"):
            link.update_device(
                mem, "buf", np.zeros(2, dtype=np.uint64), offset_elems=-1
            )

    def test_failed_transfer_stats(self):
        from repro.faults import FaultInjector, FaultPlan, TransferFault

        inj = FaultInjector(FaultPlan(transfer_fail=1.0, seed=1))
        link = self._link(injector=inj)
        mem = DeviceMemory(1 << 20)
        host = np.arange(16, dtype=np.uint64)
        with pytest.raises(TransferFault):
            link.to_device(mem, "buf", host)
        # the failed attempt burned wire time but moved no bytes
        assert link.stats.failed_transfers == 1
        assert link.stats.transfers == 0
        assert link.stats.bytes_to_device == 0
        assert link.stats.total_time_ns == pytest.approx(
            link.time_ns(host.nbytes)
        )
        assert "buf" not in mem

    def test_retried_transfer_stats(self):
        """One failure then success: both counted, time accumulates."""
        from repro.faults import FaultError, FaultInjector, FaultPlan

        inj = FaultInjector(FaultPlan(transfer_fail=1.0, seed=1))
        link = self._link(injector=inj)
        mem = DeviceMemory(1 << 20)
        host = np.arange(16, dtype=np.uint64)
        with pytest.raises(FaultError):
            link.to_device(mem, "buf", host)
        inj.disable()  # the fault condition clears; retry succeeds
        link.to_device(mem, "buf", host)
        assert link.stats.failed_transfers == 1
        assert link.stats.transfers == 1
        assert link.stats.bytes_to_device == host.nbytes
        assert link.stats.total_time_ns == pytest.approx(
            2 * link.time_ns(host.nbytes)
        )
        assert np.array_equal(mem.get("buf").array, host)

    def test_failed_update_leaves_device_untouched(self):
        from repro.faults import FaultError, FaultInjector, FaultPlan

        inj = FaultInjector(FaultPlan(transfer_fail=1.0, seed=1))
        link = self._link()
        mem = DeviceMemory(1 << 20)
        link.to_device(mem, "buf", np.zeros(8, dtype=np.uint64))
        link.injector = inj
        with pytest.raises(FaultError):
            link.update_device(
                mem, "buf", np.asarray([7], dtype=np.uint64), offset_elems=2
            )
        assert mem.get("buf").array[2] == 0

    def test_stats_reset_clears_failed_transfers(self):
        from repro.faults import FaultError, FaultInjector, FaultPlan

        inj = FaultInjector(FaultPlan(transfer_fail=1.0, seed=1))
        link = self._link(injector=inj)
        mem = DeviceMemory(1 << 20)
        with pytest.raises(FaultError):
            link.to_device(mem, "buf", np.ones(4, dtype=np.uint64))
        link.stats.reset()
        assert link.stats.failed_transfers == 0
        assert link.stats.total_time_ns == 0.0
