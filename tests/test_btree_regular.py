"""Regular (pointer-based) CPU-optimized B+-tree (Fig 2 c-d)."""

import numpy as np
import pytest

from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.keys import KEY64
from repro.memsim.mainmem import MemorySystem


class TestBulkBuild:
    def test_all_keys_found(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values)
        assert np.array_equal(tree.lookup_batch(keys), values)
        tree.check_invariants()

    def test_scalar_matches_batch(self, small_dataset64):
        keys, values = small_dataset64
        tree = RegularCpuBPlusTree(keys, values)
        for k, v in zip(keys[:64].tolist(), values[:64].tolist()):
            assert tree.lookup(k) == v

    def test_leaf_capacity_is_256_pairs(self):
        tree = RegularCpuBPlusTree(key_bits=64)
        assert tree.leaves.capacity_pairs == 256

    def test_inner_node_is_17_cache_lines(self):
        tree = RegularCpuBPlusTree(key_bits=64)
        assert tree.lines_per_inner == 17

    def test_32bit_inner_node_is_33_cache_lines(self):
        tree = RegularCpuBPlusTree(key_bits=32)
        assert tree.lines_per_inner == 33
        assert tree.leaves.capacity_pairs == 256 * 8

    def test_fill_factor_leaves_room(self, dataset64):
        keys, values = dataset64
        packed = RegularCpuBPlusTree(keys, values, fill=1.0)
        loose = RegularCpuBPlusTree(keys, values, fill=0.5)
        assert loose.leaves.count > packed.leaves.count
        loose.check_invariants()

    def test_invalid_fill_rejected(self, dataset64):
        keys, values = dataset64
        with pytest.raises(ValueError):
            RegularCpuBPlusTree(keys, values, fill=0.0)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            RegularCpuBPlusTree([1, 1], [1, 2])

    def test_leaf_chain_sorted(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values)
        items = list(tree.items())
        assert [k for k, _ in items] == sorted(keys.tolist())

    def test_last_level_pools_share_index(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values)
        assert tree.last.count == tree.leaves.count


class TestInsert:
    def test_insert_into_empty(self):
        tree = RegularCpuBPlusTree()
        assert tree.insert(5, 50)
        assert tree.lookup(5) == 50
        assert len(tree) == 1

    def test_insert_overwrites(self):
        tree = RegularCpuBPlusTree()
        tree.insert(5, 50)
        assert not tree.insert(5, 51)
        assert tree.lookup(5) == 51
        assert len(tree) == 1

    def test_sequential_inserts(self):
        tree = RegularCpuBPlusTree()
        for k in range(2000):
            tree.insert(k, k * 2)
        tree.check_invariants()
        assert len(tree) == 2000
        assert all(tree.lookup(k) == k * 2 for k in range(0, 2000, 37))

    def test_descending_inserts(self):
        tree = RegularCpuBPlusTree()
        for k in range(1500, 0, -1):
            tree.insert(k, k)
        tree.check_invariants()
        assert len(tree) == 1500

    def test_random_inserts(self):
        import random
        random.seed(3)
        tree = RegularCpuBPlusTree()
        ks = random.sample(range(10**9), 3000)
        for k in ks:
            tree.insert(k, k % 101)
        tree.check_invariants()
        assert all(tree.lookup(k) == k % 101 for k in ks[::17])

    def test_insert_grows_height(self):
        tree = RegularCpuBPlusTree()
        assert tree.height == 1
        # >64 big leaves forces a second inner level
        for k in range(64 * 256 + 300):
            tree.insert(k, 0)
        assert tree.height >= 2
        tree.check_invariants()

    def test_insert_into_bulk_built(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values, fill=0.7)
        existing = set(keys.tolist())
        rng = np.random.default_rng(5)
        new = [int(x) for x in rng.choice(2**60, size=500)
               if int(x) not in existing]
        for k in new:
            tree.insert(k, k % 7)
        tree.check_invariants()
        assert all(tree.lookup(k) == k % 7 for k in new)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_sentinel_key_rejected(self):
        tree = RegularCpuBPlusTree()
        with pytest.raises(ValueError):
            tree.insert(KEY64.max_value, 0)

    def test_insert_raises_routing_keys(self):
        tree = RegularCpuBPlusTree(np.arange(1, 1000, dtype=np.uint64),
                                   np.arange(1, 1000, dtype=np.uint64))
        tree.insert(10**9, 1)  # beyond the previous maximum
        tree.check_invariants()
        assert tree.lookup(10**9) == 1


class TestDelete:
    def test_delete_present(self, small_dataset64):
        keys, values = small_dataset64
        tree = RegularCpuBPlusTree(keys, values)
        assert tree.delete(int(keys[0]))
        assert tree.lookup(int(keys[0])) is None
        assert len(tree) == len(keys) - 1
        tree.check_invariants()

    def test_delete_absent(self, small_dataset64):
        keys, values = small_dataset64
        tree = RegularCpuBPlusTree(keys, values)
        assert not tree.delete(int(keys.max()) + 1)
        assert len(tree) == len(keys)

    def test_delete_everything(self):
        tree = RegularCpuBPlusTree()
        ks = list(range(0, 600, 3))
        for k in ks:
            tree.insert(k, k)
        for k in ks:
            assert tree.delete(k)
        assert len(tree) == 0
        tree.check_invariants()
        assert all(tree.lookup(k) is None for k in ks)

    def test_delete_then_reinsert(self):
        tree = RegularCpuBPlusTree()
        for k in range(400):
            tree.insert(k, k)
        for k in range(0, 400, 2):
            tree.delete(k)
        for k in range(0, 400, 2):
            tree.insert(k, k + 1)
        tree.check_invariants()
        assert tree.lookup(10) == 11
        assert tree.lookup(11) == 11

    def test_delete_unlinks_empty_big_leaf(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values)
        # wipe the entire first big leaf
        first = tree._first_leaf
        victims = tree.leaves.keys[first, : tree.leaves.size[first]].tolist()
        nxt = int(tree.leaves.next[first])
        for k in victims:
            tree.delete(int(k))
        assert tree._first_leaf == nxt
        tree.check_invariants()


class TestRangeQueries:
    def test_window(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values)
        sk = np.sort(keys)
        got = tree.range_query(int(sk[50]), int(sk[99]))
        assert [k for k, _ in got] == sk[50:100].tolist()

    def test_cross_leaf_boundaries(self):
        n = 1200  # spans several big leaves
        keys = np.arange(0, 2 * n, 2, dtype=np.uint64)
        tree = RegularCpuBPlusTree(keys, keys)
        got = tree.range_query(100, 1100)
        assert [k for k, _ in got] == list(range(100, 1101, 2))

    def test_empty_tree_range(self):
        tree = RegularCpuBPlusTree()
        assert tree.range_query(0, 100) == []


class TestStructure:
    def test_three_lines_per_inner_search(self, dataset64):
        keys, values = dataset64
        mem = MemorySystem()
        tree = RegularCpuBPlusTree(keys, values, mem=mem)
        mem.reset_counters()
        tree.lookup(int(keys[0]))
        # 3 lines per inner level + 1 leaf line (section 4.1: 3H + 1)
        assert mem.counters.line_accesses == 3 * tree.height + 1

    def test_empty_key_slots_hold_sentinel(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values)
        node = tree.root if tree.height > 1 else None
        if node is not None:
            size = int(tree.upper.size[node])
            assert np.all(
                tree.upper.keys[node, size:] == KEY64.max_value
            )

    def test_index_line_is_key_line_maxima(self, dataset64):
        keys, values = dataset64
        tree = RegularCpuBPlusTree(keys, values)
        kpl = tree.spec.keys_per_line
        for node in range(tree.last.count):
            reshaped = tree.last.keys[node].reshape(kpl, kpl)
            assert np.array_equal(tree.last.index_line[node],
                                  reshaped[:, -1])

    def test_lookup_batch_vs_scalar_after_updates(self):
        import random
        random.seed(9)
        tree = RegularCpuBPlusTree()
        ks = random.sample(range(10**8), 1000)
        for k in ks:
            tree.insert(k, k % 13)
        out = tree.lookup_batch(np.asarray(ks, dtype=np.uint64))
        assert [int(x) for x in out] == [k % 13 for k in ks]
