"""The generic leaf-stored hybrid framework (section 7 future work)."""

import numpy as np
import pytest

from repro.core.framework import (
    CssTreeAdapter,
    HybridFramework,
    ImplicitHBAdapter,
    RegularHBAdapter,
)
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.cpu.css_tree import CssTree
from repro.memsim.mainmem import MemorySystem
from repro.workloads.generators import generate_dataset
from repro.workloads.queries import make_point_queries


@pytest.fixture(scope="module")
def data():
    keys, values = generate_dataset(1 << 14, seed=23)
    sample = make_point_queries(keys, 1024)
    return keys, values, sample


def make_adapter(kind, keys, values, machine):
    if kind == "implicit":
        return ImplicitHBAdapter(
            ImplicitHBPlusTree(keys, values, machine=machine)
        )
    if kind == "css":
        return CssTreeAdapter(
            CssTree(keys, values, mem=MemorySystem.from_spec(machine.cpu)),
            machine,
        )
    return RegularHBAdapter(HBPlusTree(keys, values, machine=machine))


ADAPTERS = ["implicit", "css", "regular"]


class TestPlanning:
    @pytest.mark.parametrize("kind", ADAPTERS)
    def test_plan_produces_valid_knobs(self, data, m1, kind):
        keys, values, sample = data
        fw = HybridFramework(make_adapter(kind, keys, values, m1), m1,
                             sample=sample)
        plan = fw.plan()
        assert plan.mode in ("cpu-only", "hybrid", "balanced")
        assert 0 <= plan.depth <= fw.adapter.height
        assert 0.0 <= plan.ratio <= 1.0
        assert plan.bucket_size in (8192, 16384, 32768, 65536)
        assert plan.predicted_qps > 0
        assert "cpu-only" in plan.alternatives

    @pytest.mark.parametrize("kind", ADAPTERS)
    def test_strong_gpu_machine_goes_hybrid(self, data, m1, kind):
        keys, values, sample = data
        fw = HybridFramework(make_adapter(kind, keys, values, m1), m1,
                             sample=sample)
        plan = fw.plan()
        assert plan.mode in ("hybrid", "balanced")
        assert plan.predicted_qps > plan.alternatives["cpu-only"]

    def test_weak_gpu_machine_balances_or_bails(self, data, m2):
        keys, values, sample = data
        fw = HybridFramework(
            make_adapter("implicit", keys, values, m2), m2, sample=sample
        )
        plan = fw.plan()
        # with a weak GPU the framework must not pick plain hybrid
        assert plan.mode in ("balanced", "cpu-only")

    def test_regular_adapter_never_balanced(self, data, m2):
        keys, values, sample = data
        fw = HybridFramework(
            make_adapter("regular", keys, values, m2), m2, sample=sample
        )
        plan = fw.plan()
        assert plan.mode in ("cpu-only", "hybrid")

    def test_plan_requires_sample(self, data, m1):
        keys, values, _sample = data
        fw = HybridFramework(make_adapter("css", keys, values, m1), m1)
        with pytest.raises(ValueError):
            fw.plan()

    def test_describe_is_readable(self, data, m1):
        keys, values, sample = data
        fw = HybridFramework(make_adapter("implicit", keys, values, m1),
                             m1, sample=sample)
        text = fw.plan().describe()
        assert "MQPS" in text and "D=" in text


class TestExecution:
    @pytest.mark.parametrize("kind", ADAPTERS)
    @pytest.mark.parametrize("machine_name", ["m1", "m2"])
    def test_results_correct_under_any_plan(self, data, m1, m2, kind,
                                            machine_name):
        keys, values, sample = data
        machine = m1 if machine_name == "m1" else m2
        fw = HybridFramework(make_adapter(kind, keys, values, machine),
                             machine, sample=sample)
        fw.plan()
        out = fw.execute(keys[:1500])
        assert np.array_equal(out, values[:1500])

    @pytest.mark.parametrize("kind", ["implicit", "css"])
    def test_forced_balanced_mode_correct(self, data, m1, kind):
        keys, values, sample = data
        fw = HybridFramework(make_adapter(kind, keys, values, m1), m1,
                             sample=sample)
        plan = fw.plan()
        plan.mode = "balanced"
        plan.depth = min(2, fw.adapter.height)
        plan.ratio = 0.5
        out = fw.execute(keys[:800])
        assert np.array_equal(out, values[:800])

    @pytest.mark.parametrize("kind", ADAPTERS)
    def test_forced_cpu_only_correct(self, data, m1, kind):
        keys, values, sample = data
        fw = HybridFramework(make_adapter(kind, keys, values, m1), m1,
                             sample=sample)
        plan = fw.plan()
        plan.mode = "cpu-only"
        out = fw.execute(keys[:800])
        assert np.array_equal(out, values[:800])

    def test_absent_keys(self, data, m1):
        keys, values, sample = data
        fw = HybridFramework(make_adapter("css", keys, values, m1), m1,
                             sample=sample)
        fw.plan()
        probe = np.asarray([int(keys.max()) + 3], dtype=np.uint64)
        out = fw.execute(probe)
        assert out[0] == fw.adapter.spec.max_value

    def test_execute_plans_lazily(self, data, m1):
        keys, values, sample = data
        fw = HybridFramework(make_adapter("implicit", keys, values, m1),
                             m1, sample=sample)
        out = fw.execute(keys[:100])  # no explicit plan() call
        assert fw.plan_result is not None
        assert np.array_equal(out, values[:100])


class TestAdapters:
    def test_implicit_gpu_resume_matches_full(self, data, m1):
        keys, values, sample = data
        adapter = make_adapter("implicit", keys, values, m1)
        q = np.asarray(keys[:256], dtype=np.uint64)
        full = adapter.full_search(q)
        levels = np.full(len(q), 2, dtype=np.int64)
        nodes = adapter.cpu_descend(q, levels)
        refs, _txn = adapter.gpu_resume(q, levels, nodes)
        split = adapter.cpu_finish(q, refs)
        assert np.array_equal(full, split)

    def test_css_gpu_resume_matches_full(self, data, m1):
        keys, values, sample = data
        adapter = make_adapter("css", keys, values, m1)
        q = np.asarray(keys[:256], dtype=np.uint64)
        full = adapter.full_search(q)
        levels = np.full(len(q), 1, dtype=np.int64)
        nodes = adapter.cpu_descend(q, levels)
        refs, _txn = adapter.gpu_resume(q, levels, nodes)
        assert np.array_equal(adapter.cpu_finish(q, refs), full)

    def test_regular_rejects_partial_descent(self, data, m1):
        keys, values, sample = data
        adapter = make_adapter("regular", keys, values, m1)
        q = np.asarray(keys[:8], dtype=np.uint64)
        with pytest.raises(NotImplementedError):
            adapter.gpu_resume(q, np.ones(8, dtype=np.int64),
                               np.zeros(8, dtype=np.int64))

    @pytest.mark.parametrize("kind", ADAPTERS)
    def test_level_profiles_shape(self, data, m1, kind):
        keys, values, sample = data
        adapter = make_adapter(kind, keys, values, m1)
        profiles, leaf = adapter.level_profiles(sample[:512])
        assert len(profiles) == adapter.height
        assert leaf.misses >= 0

    @pytest.mark.parametrize("kind", ADAPTERS)
    def test_gpu_transactions_positive(self, data, m1, kind):
        keys, values, sample = data
        adapter = make_adapter(kind, keys, values, m1)
        assert adapter.gpu_transactions_per_query(sample[:512]) > 0
