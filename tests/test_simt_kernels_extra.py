"""Extra SIMT interpreter coverage: reconvergence, banks, stores."""

import numpy as np
import pytest

from repro.gpusim.memory import DeviceMemory
from repro.gpusim.simt import KernelLaunch


def _reconverge_kernel(ctx, data, out):
    """Divergent halves that must reconverge at the barrier."""
    tid = ctx.thread_idx[0]
    if tid < 16:
        v = yield ("gld", data, tid)
        yield ("shst", "acc", tid, int(v) * 2)
    else:
        yield ("shst", "acc", tid, tid)
    yield ("sync",)
    neighbour = yield ("shld", "acc", (tid + 16) % 32)
    yield ("gst", out, tid, neighbour)


def _bank_conflict_kernel(ctx, out):
    """Every thread hits bank 0 with a distinct word: worst case."""
    tid = ctx.thread_idx[0]
    yield ("shst", "buf", tid * 32, tid)
    yield ("sync",)
    v = yield ("shld", "buf", tid * 32)
    yield ("gst", out, tid, v)


def _store_only_kernel(ctx, out):
    tid = ctx.block_idx * ctx.block_dim[0] + ctx.thread_idx[0]
    yield ("gst", out, tid, tid * 3)


def _multi_barrier_kernel(ctx, out):
    tid = ctx.thread_idx[0]
    total = 0
    for round_no in range(4):
        yield ("shst", "scratch", tid, tid + round_no)
        yield ("sync",)
        v = yield ("shld", "scratch", (tid + 1) % ctx.block_dim[0])
        total += int(v)
        yield ("sync",)
    yield ("gst", out, tid, total)


class TestReconvergence:
    def test_divergent_halves_reconverge(self):
        mem = DeviceMemory(1 << 20)
        data = mem.upload("data", np.arange(16, dtype=np.int64))
        out = mem.upload("out", np.zeros(32, dtype=np.int64))
        launch = KernelLaunch(
            mem, _reconverge_kernel, 1, (32, 1),
            shared_decls={"acc": ((32,), np.int64)},
        )
        stats = launch.run(data, out)
        # thread t < 16 reads acc[t+16] = t+16; thread t >= 16 reads
        # acc[t-16] = (t-16)*2
        expect = [t + 16 for t in range(16)] + [
            (t - 16) * 2 for t in range(16, 32)
        ]
        assert out.array.tolist() == expect
        assert stats.divergent_rounds > 0
        assert stats.barriers >= 1


class TestBankConflicts:
    def test_worst_case_counted(self):
        mem = DeviceMemory(1 << 20)
        out = mem.upload("out", np.zeros(32, dtype=np.int64))
        launch = KernelLaunch(
            mem, _bank_conflict_kernel, 1, (32, 1),
            shared_decls={"buf": ((32 * 32,), np.int32)},
        )
        stats = launch.run(out)
        assert out.array.tolist() == list(range(32))
        # 32 distinct words in one bank -> 31 extra cycles per access
        assert stats.bank_conflicts >= 31


class TestStores:
    def test_store_only_kernel(self):
        mem = DeviceMemory(1 << 20)
        out = mem.upload("out", np.zeros(64, dtype=np.int64))
        launch = KernelLaunch(mem, _store_only_kernel, 2, (32, 1))
        stats = launch.run(out)
        assert out.array.tolist() == [i * 3 for i in range(64)]
        assert stats.global_transactions > 0


class TestRepeatedBarriers:
    def test_four_rounds(self):
        mem = DeviceMemory(1 << 20)
        out = mem.upload("out", np.zeros(8, dtype=np.int64))
        launch = KernelLaunch(
            mem, _multi_barrier_kernel, 1, (8, 1),
            shared_decls={"scratch": ((8,), np.int64)},
        )
        stats = launch.run(out)
        expect = [sum((t + 1) % 8 + r for r in range(4)) for t in range(8)]
        assert out.array.tolist() == expect
        assert stats.barriers >= 8  # two per round


class TestFigure32Bit:
    def test_fig19_runs_32bit(self, monkeypatch):
        import repro.bench.figures.common as common
        monkeypatch.setattr(common, "QUICK_SIZES", [1 << 13])
        monkeypatch.setattr(common, "PROFILE_QUERIES", 256)
        from repro.bench.figures import fig19
        table = fig19.run(key_bits=32)
        assert len(table.rows) == 3
        f9 = table.value("mqps", tree="cpu-implicit-f9", n=1 << 13)
        f8 = table.value("mqps", tree="hb-implicit-f8", n=1 << 13)
        assert f9 >= f8

    def test_fig07_runs_32bit(self, monkeypatch):
        import repro.bench.figures.common as common
        monkeypatch.setattr(common, "QUICK_SIZES", [1 << 13])
        monkeypatch.setattr(common, "PROFILE_QUERIES", 256)
        from repro.bench.figures import fig07
        table = fig07.run(key_bits=32)
        assert len(table.rows) == 6


class TestAutoChart:
    def test_picks_sweep_projection(self):
        from repro.bench.harness import ExperimentTable
        from repro.bench.run_all import _auto_chart
        t = ExperimentTable("x", "d")
        t.add(n=1, tree="a", mqps=10.0)
        t.add(n=2, tree="a", mqps=20.0)
        chart = _auto_chart(t)
        assert "mqps over n" in chart

    def test_no_projection_returns_empty(self):
        from repro.bench.harness import ExperimentTable
        from repro.bench.run_all import _auto_chart
        t = ExperimentTable("x", "d")
        t.add(foo=1, bar=2)
        assert _auto_chart(t) == ""
