"""The sorted/deduplicated bucket execution engine (DESIGN.md §8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import (
    BatchingEngine,
    measure_sorted_delta,
    plan_bucket,
)
from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.gpusim.kernels.coalesce import warp_distinct
from repro.platform.costmodel import hybrid_bucket_costs
from repro.workloads.generators import generate_dataset, generate_skewed_queries


@pytest.fixture(scope="module")
def data():
    return generate_dataset(3000, seed=21)


@pytest.fixture(scope="module")
def hbr(data, m1):
    keys, values = data
    return HBPlusTree(keys, values, machine=m1)


@pytest.fixture(scope="module")
def hbi(data, m1):
    keys, values = data
    return ImplicitHBPlusTree(keys, values, machine=m1)


class TestWarpDistinct:
    def test_empty(self):
        assert warp_distinct(np.zeros(0, dtype=np.int64), 4) == 0

    def test_all_equal_one_per_warp(self):
        v = np.zeros(8, dtype=np.int64)
        assert warp_distinct(v, 4) == 2

    def test_all_distinct(self):
        v = np.arange(8, dtype=np.int64)
        assert warp_distinct(v, 4) == 8

    def test_tail_window(self):
        v = np.asarray([1, 1, 2, 2, 3], dtype=np.int64)
        # full window {1,1,2,2} = 2 distinct, tail {3} = 1
        assert warp_distinct(v, 4) == 3

    @given(
        st.lists(st.integers(0, 50), min_size=0, max_size=200),
        st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_sorted_flag_never_changes_count(self, values, group):
        v = np.asarray(sorted(values), dtype=np.int64)
        fast = warp_distinct(v, group, assume_sorted=True)
        slow = warp_distinct(v, group, assume_sorted=False)
        assert fast == slow

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_sorting_never_increases_transactions(self, values):
        """Sorting never increases the count beyond the boundary slack.

        A sorted stream's per-warp distinct total is at most the global
        distinct count plus one split per warp boundary (a run cut in
        two), and any arrival order pays at least the global distinct
        count — so sorted <= arrival + (windows - 1).  Without the
        slack the claim is false: [0,0,0,2,1,1] in warps of 4 charges
        3, its sorted twin [0,0,0,1 | 1,2] charges 4.
        """
        v = np.asarray(values, dtype=np.int64)
        windows = -(-len(v) // 4)
        assert warp_distinct(np.sort(v), 4) <= warp_distinct(v, 4) + windows - 1


class TestBucketPlan:
    def test_plan_dedups_and_sorts(self):
        q = np.asarray([5, 3, 5, 1, 3], dtype=np.uint64)
        plan = plan_bucket(q)
        assert np.array_equal(plan.sorted_unique, [1, 3, 5])
        assert plan.n_unique == 3
        assert plan.n_queries == 5
        assert plan.duplicate_fraction == pytest.approx(0.4)
        assert np.array_equal(plan.scatter(plan.sorted_unique), q)

    def test_empty_plan(self):
        plan = plan_bucket(np.zeros(0, dtype=np.uint64))
        assert plan.n_queries == 0
        assert plan.n_unique == 0
        assert plan.duplicate_fraction == 0.0
        assert len(plan.scatter(np.zeros(0, dtype=np.uint64))) == 0


@pytest.mark.parametrize("tree_fixture", ["hbr", "hbi"])
class TestEngineEquivalence:
    def test_bit_identical_to_naive(self, tree_fixture, request, data):
        tree = request.getfixturevalue(tree_fixture)
        keys, _values = data
        rng = np.random.default_rng(7)
        queries = rng.choice(keys, size=2048, replace=True)
        engine = BatchingEngine(tree)
        assert np.array_equal(
            engine.lookup_batch(queries), tree.lookup_batch(queries)
        )

    def test_missing_keys_stay_missing(self, tree_fixture, request, data):
        tree = request.getfixturevalue(tree_fixture)
        keys, _values = data
        probes = np.asarray(
            [int(keys[0]) + 1, int(keys[-1]) + 1, 12345], dtype=np.uint64
        )
        engine = BatchingEngine(tree)
        assert np.array_equal(
            engine.lookup_batch(probes), tree.lookup_batch(probes)
        )

    def test_empty_bucket(self, tree_fixture, request):
        tree = request.getfixturevalue(tree_fixture)
        engine = BatchingEngine(tree)
        empty = np.zeros(0, dtype=np.uint64)
        assert len(engine.lookup_batch(empty)) == 0
        assert len(tree.lookup_batch(empty)) == 0
        result = tree.gpu_search_bucket(empty)
        assert result.transactions == 0
        assert result.transactions_per_query == 0.0

    def test_modeled_transactions_pure(self, tree_fixture, request, data):
        """The baseline measurement must not touch device counters."""
        tree = request.getfixturevalue(tree_fixture)
        keys, _values = data
        before = tree.device.memory.counters.transactions_64
        txns = tree.modeled_transactions(keys[:512])
        assert txns > 0
        assert tree.device.memory.counters.transactions_64 == before
        assert tree.modeled_transactions(np.zeros(0, dtype=np.uint64)) == 0


@pytest.mark.parametrize("tree_fixture", ["hbr", "hbi"])
class TestSortedGain:
    def test_sorted_never_costs_more(self, tree_fixture, request, data):
        tree = request.getfixturevalue(tree_fixture)
        keys, _values = data
        rng = np.random.default_rng(11)
        queries = rng.choice(keys, size=4096, replace=True)
        delta = measure_sorted_delta(tree, queries)
        assert delta.sorted_transactions <= delta.unsorted_transactions

    def test_zipf_workload_measurable_reduction(self, tree_fixture, request):
        """The PR's core claim: skewed buckets cost measurably fewer
        transactions once sorted and deduplicated."""
        tree = request.getfixturevalue(tree_fixture)
        queries = generate_skewed_queries("zipf", 4096, seed=19)
        delta = measure_sorted_delta(tree, queries)
        assert delta.unique < delta.queries  # duplicate-heavy indeed
        assert delta.gain > 0.5
        engine = BatchingEngine(tree, measure_baseline=True)
        engine.lookup_batch(queries)
        assert engine.stats.sorted_gain > 0.5
        assert engine.stats.duplicate_fraction > 0.0

    def test_result_carries_baseline(self, tree_fixture, request, data):
        tree = request.getfixturevalue(tree_fixture)
        keys, _values = data
        rng = np.random.default_rng(23)
        queries = rng.choice(keys, size=1024, replace=True)
        engine = BatchingEngine(tree, measure_baseline=True)
        _values_out, result = engine.execute_bucket(queries)
        assert result.baseline_transactions is not None
        assert result.baseline_transactions >= result.transactions
        assert 0.0 <= result.sorted_gain < 1.0


class TestEngineHypothesis:
    @given(
        request_keys=st.lists(
            st.integers(0, 2**63), min_size=1, max_size=300
        ),
        heavy=st.booleans(),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_sort_dedup_scatter_bit_identical(self, hbr, data,
                                              request_keys, heavy):
        """Random and duplicate-heavy buckets: engine == naive path."""
        keys, _values = data
        q = np.asarray(request_keys, dtype=np.uint64)
        if heavy:
            # duplicate-heavy: fold the domain onto a few stored keys
            q = keys[q % np.uint64(16)]
        q = np.minimum(q, np.uint64(hbr.spec.max_value - 1))
        engine = BatchingEngine(hbr, measure_baseline=True)
        assert np.array_equal(engine.lookup_batch(q), hbr.lookup_batch(q))
        # the measured baseline can never be beaten by arrival order
        assert engine.stats.transactions <= engine.stats.baseline_transactions


class TestBucketCosts:
    def test_empty_tree_raises_value_error(self, m1):
        tree = HBPlusTree(machine=m1)
        with pytest.raises(ValueError, match="empty"):
            tree.bucket_costs()

    def test_tiny_tree_samples_with_replacement(self, m1):
        keys = np.arange(1, 8, dtype=np.uint64) * 97
        tree = HBPlusTree(keys, keys, machine=m1)
        costs = tree.bucket_costs()
        assert costs.sequential > 0

    def test_empty_sample_rejected(self, hbr):
        with pytest.raises(ValueError, match="non-empty"):
            hbr.bucket_costs(sample=np.zeros(0, dtype=np.uint64))

    def test_sort_batches_lowers_gpu_stage(self, hbr):
        queries = generate_skewed_queries("zipf", 4096, seed=19)
        plain = hbr.bucket_costs(sample=queries)
        sorted_costs = hbr.bucket_costs(sample=queries, sort_batches=True)
        assert sorted_costs.t2 < plain.t2
        assert sorted_costs.sequential < plain.sequential

    def test_sort_batches_implicit(self, hbi):
        queries = generate_skewed_queries("zipf", 4096, seed=19)
        plain = hbi.bucket_costs(sample=queries)
        sorted_costs = hbi.bucket_costs(sample=queries, sort_batches=True)
        assert sorted_costs.t2 < plain.t2

    def test_unique_fraction_validation(self, hbr, m1):
        profile = hbr.profile_leaf_stage(
            np.asarray([1, 2, 3], dtype=np.uint64)
        )
        with pytest.raises(ValueError):
            hybrid_bucket_costs(
                m1, hbr.spec, 1024,
                gpu_transactions_per_query=1.0, gpu_levels=3.0,
                cpu_leaf_profile=profile, unique_fraction=0.0,
            )


class TestVectorizedPacking:
    def test_pack_matches_scalar_reference(self, hbr):
        assert np.array_equal(
            hbr.pack_i_segment(), hbr.pack_i_segment_scalar()
        )

    def test_pack_matches_after_updates(self, data, m1):
        keys, values = data
        tree = HBPlusTree(keys, values, machine=m1, fill=0.7)
        for k in range(100):
            tree.cpu_tree.insert(int(keys[-1]) + 2 * k + 2, k)
        assert np.array_equal(
            tree.pack_i_segment(), tree.pack_i_segment_scalar()
        )


class TestTouchLines:
    def test_counter_identical_to_loop(self, data, m1):
        keys, values = data
        tree_a = HBPlusTree(keys, values, machine=m1)
        tree_b = HBPlusTree(keys, values, machine=m1)
        rng = np.random.default_rng(3)
        total = tree_a.cpu_tree.leaves.count * tree_a.cpu_tree.leaves.lines_per_leaf
        idx = rng.integers(0, total, size=2000)
        for t in (tree_a, tree_b):
            t.cpu_tree._ensure_segments()
            t.mem.flush()
            t.mem.reset_counters()
        for i in idx.tolist():
            tree_a.mem.touch_line(tree_a.cpu_tree.l_segment, int(i))
        tree_b.mem.touch_lines(tree_b.cpu_tree.l_segment, idx)
        ca, cb = tree_a.mem.counters, tree_b.mem.counters
        assert ca.line_accesses == cb.line_accesses
        assert ca.cache_hits == cb.cache_hits
        assert ca.cache_misses == cb.cache_misses
        assert ca.tlb_hits == cb.tlb_hits
        assert ca.tlb_misses_small == cb.tlb_misses_small
        assert ca.tlb_misses_huge == cb.tlb_misses_huge
        assert ca.prefetches == cb.prefetches

    def test_empty_batch(self, hbr):
        hbr.cpu_tree._ensure_segments()
        assert hbr.mem.touch_lines(
            hbr.cpu_tree.l_segment, np.zeros(0, dtype=np.int64)
        ) == 0

    def test_out_of_bounds_rejected(self, hbr):
        hbr.cpu_tree._ensure_segments()
        with pytest.raises(ValueError):
            hbr.mem.touch_lines(
                hbr.cpu_tree.l_segment, np.asarray([10**12])
            )


class TestLoadBalancerSortBatches:
    def test_sorted_profile_not_worse(self, hbi):
        plain = LoadBalancer(hbi)
        srt = LoadBalancer(hbi, sort_batches=True)
        # sorted distinct streams coalesce at least as well per level
        assert sum(srt.gpu_level_ns) <= sum(plain.gpu_level_ns) * 1.0001
        assert srt.discover().depth >= 0
