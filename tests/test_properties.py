"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.node_search import (
    hierarchical_simd_search,
    linear_simd_search,
    sequential_search,
)
from repro.gpusim.memory import coalesce
from repro.keys import KEY64
from repro.memsim.cache import SetAssociativeCache
from repro.memsim.tlb import Tlb
from repro.memsim.allocator import PageKind

SLOW = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

key_lists = st.lists(
    st.integers(min_value=0, max_value=2**63),
    min_size=1, max_size=200, unique=True,
)


class TestNodeSearchProperties:
    @given(
        keys=st.lists(st.integers(0, 2**62), min_size=1, max_size=8,
                      unique=True),
        query=st.integers(0, 2**62),
    )
    @SLOW
    def test_all_algorithms_agree(self, keys, query):
        node = sorted(keys) + [KEY64.max_value] * (8 - len(keys))
        expected = sum(1 for k in node if k < query)
        assert sequential_search(node, query) == expected
        assert linear_simd_search(node, query) == expected
        assert hierarchical_simd_search(node, query) == expected

    @given(
        keys=st.lists(st.integers(0, 2**30), min_size=1, max_size=16,
                      unique=True),
        query=st.integers(0, 2**30),
    )
    @SLOW
    def test_32bit_agreement(self, keys, query):
        node = sorted(keys) + [2**32 - 1] * (16 - len(keys))
        expected = sum(1 for k in node if k < query)
        assert linear_simd_search(node, query) == expected
        assert hierarchical_simd_search(node, query) == expected


class TestImplicitTreeProperties:
    @given(keys=key_lists)
    @SLOW
    def test_tree_is_faithful_map(self, keys):
        values = [k % 1009 for k in keys]
        tree = ImplicitCpuBPlusTree(keys, values)
        model = dict(zip(keys, values))
        for k in keys:
            assert tree.lookup(k, instrument=False) == model[k]
        assert sorted(model.items()) == tree.items()

    @given(keys=key_lists, fanout=st.integers(2, 9))
    @SLOW
    def test_any_fanout_correct(self, keys, fanout):
        tree = ImplicitCpuBPlusTree(keys, keys, fanout=fanout)
        for k in keys[:32]:
            assert tree.lookup(k, instrument=False) == k

    @given(keys=key_lists, lo=st.integers(0, 2**63),
           hi=st.integers(0, 2**63))
    @SLOW
    def test_range_query_matches_filter(self, keys, lo, hi):
        tree = ImplicitCpuBPlusTree(keys, keys)
        got = tree.range_query(min(lo, hi), max(lo, hi))
        expected = sorted(k for k in keys
                          if min(lo, hi) <= k <= max(lo, hi))
        assert [k for k, _v in got] == expected

    @given(keys=key_lists)
    @SLOW
    def test_batch_equals_scalar(self, keys):
        tree = ImplicitCpuBPlusTree(keys, keys)
        out = tree.lookup_batch(np.asarray(keys, dtype=np.uint64))
        assert out.tolist() == keys


class TestRegularTreeProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(0, 5000),
            ),
            min_size=1, max_size=300,
        )
    )
    @SLOW
    def test_matches_dict_model(self, ops):
        tree = RegularCpuBPlusTree()
        model = {}
        for op, key in ops:
            if op == "insert":
                tree.insert(key, key * 3 % 997)
                model[key] = key * 3 % 997
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        for key in {k for _o, k in ops}:
            assert tree.lookup(key, instrument=False) == model.get(key)
        tree.check_invariants()

    @given(keys=key_lists)
    @SLOW
    def test_bulk_build_then_iterate(self, keys):
        tree = RegularCpuBPlusTree(keys, keys)
        assert [k for k, _v in tree.items()] == sorted(keys)
        tree.check_invariants()


class TestCoalesceProperties:
    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, 8192), st.integers(1, 256)),
            min_size=1, max_size=32,
        )
    )
    @SLOW
    def test_transactions_cover_all_accesses(self, ranges):
        txns = coalesce(ranges)
        covered = set()
        for start, size in txns:
            assert size in (32, 64, 128)
            assert start % size == 0
            covered.update(range(start, start + size))
        for start, length in ranges:
            assert all(b in covered for b in range(start, start + length))

    @given(
        ranges=st.lists(
            st.tuples(st.integers(0, 8192), st.integers(1, 64)),
            min_size=1, max_size=32,
        )
    )
    @SLOW
    def test_no_more_transactions_than_sectors(self, ranges):
        txns = coalesce(ranges)
        sectors = set()
        for start, length in ranges:
            sectors.update(range(start // 32, (start + length - 1) // 32 + 1))
        assert len(txns) <= len(sectors)


class TestCacheProperties:
    @given(addrs=st.lists(st.integers(0, 2**20), min_size=1, max_size=400))
    @SLOW
    def test_immediate_rereference_always_hits(self, addrs):
        cache = SetAssociativeCache(4096, associativity=4)
        for addr in addrs:
            cache.access(addr)
            assert cache.access(addr)

    @given(addrs=st.lists(st.integers(0, 2**20), min_size=1, max_size=400))
    @SLOW
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache = SetAssociativeCache(4096, associativity=4)
        for addr in addrs:
            cache.access(addr)
        c = cache.counters
        assert c.cache_hits + c.cache_misses == c.line_accesses

    @given(addrs=st.lists(st.integers(0, 2**16), min_size=1, max_size=300))
    @SLOW
    def test_resident_lines_bounded_by_capacity(self, addrs):
        cache = SetAssociativeCache(2048, associativity=2)
        for addr in addrs:
            cache.access(addr)
        assert cache.resident_lines <= cache.capacity_lines


class TestTlbProperties:
    @given(pages=st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    @SLOW
    def test_counters_consistent(self, pages):
        tlb = Tlb(entries_small=8, stlb_entries=8, entries_huge=4)
        for page in pages:
            tlb.translate(page, PageKind.SMALL)
        c = tlb.counters
        assert c.tlb_hits + c.tlb_misses_small == len(pages)

    @given(pages=st.lists(st.integers(0, 3), min_size=1, max_size=100))
    @SLOW
    def test_working_set_within_reach_never_misses_twice(self, pages):
        tlb = Tlb(entries_small=4, stlb_entries=0, entries_huge=4)
        for page in pages:
            tlb.translate(page, PageKind.SMALL)
        # at most 4 distinct pages -> at most 4 cold misses
        assert tlb.counters.tlb_misses_small <= 4
