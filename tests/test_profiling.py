"""The fast bench profiles must match the slow instrumented lookups."""

import numpy as np
import pytest

from repro.bench.profiling import (
    cpu_tree_performance,
    profile_fast,
    profile_implicit,
    profile_regular,
)
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.fast_tree import FastTree
from repro.memsim.mainmem import MemorySystem
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(4096, seed=13)


class TestImplicitProfileEquivalence:
    def test_lines_match_scalar_instrumented(self, data):
        keys, values = data
        q = keys[:256]

        mem_fast = MemorySystem()
        t_fast = ImplicitCpuBPlusTree(keys, values, mem=mem_fast)
        profile = profile_implicit(t_fast, q, warm=False)

        mem_slow = MemorySystem()
        t_slow = ImplicitCpuBPlusTree(keys, values, mem=mem_slow)
        for k in q.tolist():
            t_slow.lookup(int(k))
        slow_lines = mem_slow.counters.line_accesses / len(q)
        assert profile.lines == pytest.approx(slow_lines)

    def test_misses_match_scalar_instrumented(self, data):
        keys, values = data
        q = keys[:256]
        mem_fast = MemorySystem(llc_bytes=1 << 15)
        t_fast = ImplicitCpuBPlusTree(keys, values, mem=mem_fast)
        profile = profile_implicit(t_fast, q, warm=False)

        mem_slow = MemorySystem(llc_bytes=1 << 15)
        t_slow = ImplicitCpuBPlusTree(keys, values, mem=mem_slow)
        for k in q.tolist():
            t_slow.lookup(int(k))
        slow_misses = mem_slow.counters.cache_misses / len(q)
        # level-major vs query-major ordering makes the prefetcher and
        # LRU state diverge marginally
        assert profile.misses == pytest.approx(slow_misses, rel=0.05)

    def test_lines_equal_height_plus_one(self, data):
        keys, values = data
        mem = MemorySystem()
        tree = ImplicitCpuBPlusTree(keys, values, mem=mem)
        profile = profile_implicit(tree, keys[:128])
        assert profile.lines == pytest.approx(tree.lines_per_query)

    def test_warm_profile_misses_fewer(self, data):
        keys, values = data
        mem = MemorySystem()
        tree = ImplicitCpuBPlusTree(keys, values, mem=mem)
        cold = profile_implicit(tree, keys[:512], warm=False)
        mem.flush()
        warm = profile_implicit(tree, keys[:512], warm=True)
        assert warm.misses <= cold.misses


class TestRegularProfile:
    def test_lines_are_3h_plus_1(self, data):
        keys, values = data
        mem = MemorySystem()
        tree = RegularCpuBPlusTree(keys, values, mem=mem)
        profile = profile_regular(tree, keys[:128])
        assert profile.lines == pytest.approx(3 * tree.height + 1)

    def test_matches_scalar_instrumented(self, data):
        keys, values = data
        q = keys[:256]
        mem_fast = MemorySystem(llc_bytes=1 << 15)
        t_fast = RegularCpuBPlusTree(keys, values, mem=mem_fast)
        profile = profile_regular(t_fast, q, warm=False)
        mem_slow = MemorySystem(llc_bytes=1 << 15)
        t_slow = RegularCpuBPlusTree(keys, values, mem=mem_slow)
        for k in q.tolist():
            t_slow.lookup(int(k))
        assert profile.lines == pytest.approx(
            mem_slow.counters.line_accesses / len(q)
        )
        # miss counts may differ slightly: the profile replays the
        # software-pipelined (level-major) access order, the scalar
        # loop is query-major, so LRU evictions diverge marginally
        assert profile.misses == pytest.approx(
            mem_slow.counters.cache_misses / len(q), rel=0.05
        )


class TestFastProfile:
    def test_profile_runs(self, data):
        keys, values = data
        mem = MemorySystem()
        tree = FastTree(keys, values, mem=mem)
        profile = profile_fast(tree, keys[:128])
        assert profile.lines <= tree.lines_per_query
        assert profile.misses <= profile.lines


class TestCpuTreePerformance:
    def test_returns_positive_numbers(self, data, m1):
        keys, values = data
        mem = MemorySystem.from_spec(m1.cpu)
        tree = ImplicitCpuBPlusTree(keys, values, mem=mem)
        qps, lat, profile = cpu_tree_performance(tree, m1, keys[:256])
        assert qps > 0 and lat > 0
        assert profile.queries if hasattr(profile, "queries") else True

    def test_rejects_uninstrumented_tree(self, data, m1):
        keys, values = data
        tree = ImplicitCpuBPlusTree(keys, values)  # no MemorySystem
        with pytest.raises(ValueError):
            cpu_tree_performance(tree, m1, keys[:64])

    def test_rejects_unknown_type(self, m1):
        with pytest.raises(TypeError):
            cpu_tree_performance(object(), m1, np.arange(4))

    def test_more_threads_more_throughput(self, data, m1):
        keys, values = data
        mem = MemorySystem.from_spec(m1.cpu)
        tree = ImplicitCpuBPlusTree(keys, values, mem=mem)
        q1, _l, _p = cpu_tree_performance(tree, m1, keys[:256], threads=1)
        q8, _l, _p = cpu_tree_performance(tree, m1, keys[:256], threads=8)
        assert q8 > q1
