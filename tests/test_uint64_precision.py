"""Regression tests for uint64 precision hazards.

Two numpy pitfalls bit this codebase (both found by testing):

1. ``np.asarray`` on a Python-int list mixing values above int64's
   range silently promotes to float64, collapsing keys that differ
   only below 2**53;
2. ``np.searchsorted(uint64_array, python_int)`` compares as float64,
   returning the wrong slot for near-equal large keys — which once
   corrupted the leaf order of the regular tree during trace replay.

Every tree type is exercised with adversarial keys that differ only in
their low bits, above 2**53.
"""

import numpy as np
import pytest

from repro.core.gpu_update import GpuAssistedUpdater
from repro.core.hbtree import HBPlusTree
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.cpu.fast_tree import FastTree

BASE = 666103390327571400  # > 2**53: float64 cannot tell these apart
ADVERSARIAL = [BASE + d for d in (0, 15, 16, 17, 66, 81, 82)]


class TestAdversarialKeys:
    @pytest.mark.parametrize("cls", [
        ImplicitCpuBPlusTree, RegularCpuBPlusTree, CssTree, FastTree,
    ])
    def test_build_and_lookup(self, cls):
        values = [k % 1000 for k in ADVERSARIAL]
        tree = cls(ADVERSARIAL, values)
        for k, v in zip(ADVERSARIAL, values):
            assert tree.lookup(k, instrument=False) == v
        # near-misses must NOT be found
        assert tree.lookup(BASE + 1, instrument=False) is None
        assert tree.lookup(BASE + 80, instrument=False) is None

    def test_regular_insert_keeps_order(self):
        """The exact failure mode: inserting a key that differs from a
        neighbour only below float64 precision must land in order."""
        tree = RegularCpuBPlusTree(ADVERSARIAL,
                                   [0] * len(ADVERSARIAL))
        tree.insert(BASE + 81 - 15, 7)  # between existing keys
        tree.check_invariants()
        items = [k for k, _v in tree.items()]
        assert items == sorted(items)
        assert tree.lookup(BASE + 81 - 15) == 7

    def test_regular_delete_precise(self):
        tree = RegularCpuBPlusTree(ADVERSARIAL, [1] * len(ADVERSARIAL))
        assert tree.delete(BASE + 16)
        assert tree.lookup(BASE + 16) is None
        assert tree.lookup(BASE + 15) == 1
        assert tree.lookup(BASE + 17) == 1
        tree.check_invariants()

    def test_regular_range_precise_bounds(self):
        tree = RegularCpuBPlusTree(ADVERSARIAL, [1] * len(ADVERSARIAL))
        got = tree.range_query(BASE + 16, BASE + 66)
        assert [k for k, _v in got] == [BASE + 16, BASE + 17, BASE + 66]

    def test_css_range_precise_bounds(self):
        tree = CssTree(ADVERSARIAL, [1] * len(ADVERSARIAL))
        got = tree.range_query(BASE + 16, BASE + 66)
        assert [k for k, _v in got] == [BASE + 16, BASE + 17, BASE + 66]

    def test_gpu_assisted_update_precise(self, m1):
        # a bigger tree so the GPU path really runs
        rng = np.random.default_rng(3)
        filler = rng.choice(2**40, 2000, replace=False).astype(np.uint64)
        keys = np.concatenate([
            filler, np.asarray(ADVERSARIAL, dtype=np.uint64)
        ])
        tree = HBPlusTree(keys, keys, machine=m1, fill=0.7)
        new_key = BASE + 50
        GpuAssistedUpdater(tree).apply([new_key], [9])
        tree.cpu_tree.check_invariants()
        assert tree.lookup(new_key) == 9
        assert tree.lookup(BASE + 17) == BASE + 17

    def test_dense_collision_window(self):
        """64 consecutive keys above 2**60 — every pair collides in
        float64 — must all round trip through random inserts."""
        tree = RegularCpuBPlusTree()
        start = (1 << 60) + 12345
        keys = [start + i for i in range(64)]
        rng = np.random.default_rng(5)
        for k in rng.permutation(keys).tolist():
            tree.insert(int(k), int(k) % 97)
        tree.check_invariants()
        for k in keys:
            assert tree.lookup(k) == k % 97
