"""The sharded multi-tenant index service."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.batching import BatchingEngine
from repro.core.update import SyncUpdater
from repro.faults import FaultInjector, FaultPlan
from repro.io import _contents
from repro.lifecycle import SnapshotManager
from repro.lifecycle.bulkload import bulk_load
from repro.obs import MetricsRegistry, Observability, publish_service
from repro.service import (
    AdmissionPolicy,
    HashRouter,
    IndexService,
    QuotaConfig,
    QuotaExceeded,
    RangeRouter,
    ServiceConfig,
    ShardOverloaded,
    group_by_shard,
)
from repro.service.admission import ShardQueue
from repro.service.shard import shard_fault_plan


@pytest.fixture(scope="module")
def data():
    from repro.workloads.generators import generate_dataset

    keys, values = generate_dataset(2048, key_bits=64, seed=13)
    order = np.argsort(keys)
    return keys[order], values[order]


@pytest.fixture(scope="module")
def baseline(data, m1):
    keys, values = data
    tree = bulk_load("hb-regular", keys, values, machine=m1)
    return BatchingEngine(tree)


def _mixed_queries(rng, keys, n):
    hits = rng.choice(keys, n)
    misses = rng.integers(0, np.iinfo(np.uint64).max, n // 4,
                          dtype=np.uint64)
    return np.concatenate([hits, misses])


class TestRangeRouter:
    def test_shard_of_respects_cuts(self):
        r = RangeRouter([10, 20])
        assert r.n_shards == 3
        assert r.shard_of([0, 9, 10, 19, 20, 99]).tolist() \
            == [0, 0, 1, 1, 2, 2]

    def test_from_keys_equi_depth(self):
        keys = np.arange(100, dtype=np.uint64)
        r = RangeRouter.from_keys(keys, 4)
        counts = np.bincount(r.shard_of(keys), minlength=4)
        assert counts.tolist() == [25, 25, 25, 25]

    def test_shard_span_clips(self):
        r = RangeRouter([10, 20])
        assert r.shard_span(0, 5) == (0, 0)
        assert r.shard_span(5, 15) == (0, 1)
        assert r.shard_span(12, 99) == (1, 2)

    def test_split_and_merge_round_trip(self):
        r = RangeRouter([10, 20])
        r2 = r.split(1, 15)
        assert r2.cuts.tolist() == [10, 15, 20]
        assert r2.epoch == r.epoch + 1
        r3 = r2.merge(1)
        assert r3.cuts.tolist() == [10, 20]
        # the original router is untouched (immutability)
        assert r.cuts.tolist() == [10, 20]

    def test_split_rejects_out_of_range_cut(self):
        r = RangeRouter([10, 20])
        with pytest.raises(ValueError):
            r.split(1, 10)   # cut must be > shard lo
        with pytest.raises(ValueError):
            r.split(1, 21)   # belongs to shard 2

    def test_unsorted_cuts_rejected(self):
        with pytest.raises(ValueError):
            RangeRouter([20, 10])


class TestHashRouter:
    def test_deterministic_and_complete(self):
        r = HashRouter(5)
        keys = np.arange(1000, dtype=np.uint64)
        a, b = r.shard_of(keys), r.shard_of(keys)
        assert np.array_equal(a, b)
        assert set(np.unique(a)) <= set(range(5))
        # splitmix64 levels even sequential keys across all shards
        counts = np.bincount(a, minlength=5)
        assert counts.min() > 0

    def test_scans_broadcast(self):
        assert HashRouter(4).shard_span(5, 6) == (0, 3)


class TestGroupByShard:
    def test_round_trips_arrival_order(self):
        ids = np.array([2, 0, 1, 0, 2, 2])
        groups = group_by_shard(ids, 3)
        out = np.empty(6, dtype=np.int64)
        for sid, g in enumerate(groups):
            out[g] = sid
        assert np.array_equal(out, ids)


@pytest.mark.parametrize("router", ["range", "hash"])
class TestBitIdentity:
    def test_lookups_match_unsharded(self, data, baseline, m1, router):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=4, router=router, machine=m1))
        rng = np.random.default_rng(1)
        q = _mixed_queries(rng, keys, 600)
        assert np.array_equal(svc.lookup_batch(q),
                              baseline.lookup_batch(q))

    def test_scans_match_unsharded(self, data, baseline, m1, router):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=4, router=router, machine=m1))
        rng = np.random.default_rng(2)
        los = np.sort(rng.choice(keys, 24))
        his = los + rng.integers(1, 1 << 40, 24, dtype=np.uint64)
        got = svc.run_scans(los, his)
        want = baseline.run_scans(los, his)
        assert [[tuple(r) for r in s] for s in got] \
            == [[tuple(r) for r in s] for s in want]

    def test_updates_match_unsharded(self, data, m1, router):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=3, router=router, machine=m1))
        tree = bulk_load("hb-regular", keys, values, machine=m1)
        rng = np.random.default_rng(3)
        # repeated keys in one batch: arrival order must decide
        upk = np.repeat(rng.choice(keys, 40), 2)
        upv = rng.integers(1, 1 << 20, 80, dtype=np.uint64)
        dlk = rng.choice(keys, 20)
        svc.apply_updates(upk, upv, dlk)
        SyncUpdater(tree).apply(upk, upv, dlk)
        sk, sv = svc.contents()
        bk, bv = _contents(tree)
        assert np.array_equal(sk, bk)
        assert np.array_equal(sv, bv)


class TestFaultDrill:
    def test_lookups_correct_under_faults(self, data, baseline, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=3, machine=m1,
            fault_plan=FaultPlan.uniform(0.3, seed=42)))
        rng = np.random.default_rng(4)
        q = _mixed_queries(rng, keys, 400)
        for _ in range(3):
            assert np.array_equal(svc.lookup_batch(q),
                                  baseline.lookup_batch(q))
        assert sum(s.stats().faults for s in svc.shards) > 0

    def test_shard_namespaces_are_disjoint(self):
        plan = FaultPlan.uniform(0.1, seed=9)
        seeds = {shard_fault_plan(plan, sid).seed for sid in range(16)}
        assert len(seeds) == 16
        assert all(s != plan.seed for s in seeds)

    def test_implicit_kind_rejects_fault_plan(self, data, m1):
        keys, values = data
        with pytest.raises(ValueError):
            IndexService.build(keys, values, ServiceConfig(
                n_shards=2, kind="hb-implicit", machine=m1,
                fault_plan=FaultPlan.uniform(0.1)))


class TestAdaptiveShards:
    def test_controllers_drift_independently(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=3, kind="hb-implicit", adaptive=True,
            machine=m1))
        controllers = [s.controller for s in svc.shards]
        assert all(c is not None for c in controllers)
        assert len({id(c) for c in controllers}) == 3
        rng = np.random.default_rng(5)
        svc.lookup_batch(rng.choice(keys, 500))
        # each shard balances its own tree, not a shared one
        trees = {id(s.tree) for s in svc.shards}
        assert len(trees) == 3


class TestQuotaEnforcement:
    def test_noisy_tenant_capped_others_served(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1,
            quota=QuotaConfig(tenants={"noisy": (300, 100.0)})))
        rng = np.random.default_rng(6)
        svc.lookup_batch(rng.choice(keys, 300), tenant="noisy")
        with pytest.raises(QuotaExceeded):
            svc.lookup_batch(rng.choice(keys, 50), tenant="noisy")
        # the rejected batch never reached a shard
        assert sum(s.stats().lookups for s in svc.shards) == 300
        # other tenants are unaffected
        svc.lookup_batch(rng.choice(keys, 400), tenant="quiet")
        svc.advance(0.5)
        svc.lookup_batch(rng.choice(keys, 50), tenant="noisy")

    def test_scans_and_updates_are_charged(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1,
            quota=QuotaConfig(tenants={"t": (10, 0.0)})))
        svc.run_scans(keys[:4], keys[:4], tenant="t")      # 4 tokens
        svc.apply_updates(keys[:6], np.arange(6), tenant="t")  # 6
        with pytest.raises(QuotaExceeded):
            svc.lookup_batch(keys[:1], tenant="t")


class TestAdmission:
    def test_shed_policy_raises_without_side_effects(self):
        q = ShardQueue(0, capacity_ops=10,
                       policy=AdmissionPolicy.SHED)
        q.acquire(8)
        with pytest.raises(ShardOverloaded):
            q.acquire(5)
        assert q.depth == 8
        assert q.stats.shed_batches == 1
        q.release(8)
        assert q.depth == 0

    def test_block_policy_waits_for_space(self):
        q = ShardQueue(0, capacity_ops=10)
        q.acquire(10)
        admitted = threading.Event()

        def blocked():
            with q.admit(5):
                admitted.set()

        t = threading.Thread(target=blocked)
        t.start()
        assert not admitted.wait(0.05)
        q.release(10)
        assert admitted.wait(2.0)
        t.join()
        assert q.stats.blocked_waits == 1

    def test_block_timeout_sheds(self):
        q = ShardQueue(0, capacity_ops=4, timeout_s=0.01)
        q.acquire(4)
        with pytest.raises(ShardOverloaded):
            q.acquire(2)
        q.release(4)

    def test_oversized_batch_admitted_alone(self):
        q = ShardQueue(0, capacity_ops=4,
                       policy=AdmissionPolicy.SHED)
        with q.admit(100):
            assert q.depth == 100
            with pytest.raises(ShardOverloaded):
                q.acquire(1)
        assert q.depth == 0


class TestSplitMerge:
    def test_split_preserves_contents_and_lookups(self, data, baseline,
                                                  m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1))
        rng = np.random.default_rng(7)
        q = _mixed_queries(rng, keys, 300)
        svc.split_shard(0)
        assert svc.n_shards == 3
        assert svc.router.epoch == 1
        sk, sv = svc.contents()
        assert np.array_equal(sk, keys)
        assert np.array_equal(sv, values)
        assert np.array_equal(svc.lookup_batch(q),
                              baseline.lookup_batch(q))

    def test_merge_restores_shard_count(self, data, baseline, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=3, machine=m1))
        rng = np.random.default_rng(8)
        q = _mixed_queries(rng, keys, 300)
        svc.merge_shards(0)
        assert svc.n_shards == 2
        assert np.array_equal(svc.lookup_batch(q),
                              baseline.lookup_batch(q))

    def test_hash_service_cannot_split(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, router="hash", machine=m1))
        with pytest.raises(ValueError):
            svc.split_shard(0)
        with pytest.raises(ValueError):
            svc.merge_shards(0)

    def test_explicit_cut_partitions_exactly(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=1, machine=m1))
        cut = int(keys[len(keys) // 2])
        left, right = svc.split_shard(0, cut=cut)
        n_left = len(svc.shards[left])
        assert n_left == int(np.sum(keys < cut))
        assert n_left + len(svc.shards[right]) == len(keys)

    def test_snapshot_fault_contained(self, data, m1, tmp_path):
        keys, values = data
        manager = SnapshotManager(
            tmp_path, injector=FaultInjector(FaultPlan.storage(1.0)))
        svc = IndexService.build(
            keys, values, ServiceConfig(n_shards=2, machine=m1),
            snapshot_manager=manager)
        svc.split_shard(0)
        assert svc.snapshot_failures == 1
        assert manager.snapshots() == []
        sk, sv = svc.contents()
        assert np.array_equal(sk, keys)

    def test_healthy_snapshot_written_on_split(self, data, m1,
                                               tmp_path):
        keys, values = data
        manager = SnapshotManager(tmp_path)
        svc = IndexService.build(
            keys, values, ServiceConfig(n_shards=2, machine=m1),
            snapshot_manager=manager)
        svc.split_shard(1)
        assert svc.snapshot_failures == 0
        assert len(manager.snapshots()) == 1

    @pytest.mark.concurrency
    def test_split_merge_under_reader_load(self, data, m1):
        keys, values = data
        truth = dict(zip(keys.tolist(), values.tolist()))
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1))
        stop = threading.Event()
        errors = []

        def reader(seed):
            rng = np.random.default_rng(seed)
            while not stop.is_set():
                q = rng.choice(keys, 64)
                out = svc.lookup_batch(q, tenant=f"r{seed}")
                for k, v in zip(q.tolist(), out.tolist()):
                    if truth[k] != v:
                        errors.append((k, v))
                        return

        threads = [threading.Thread(target=reader, args=(s,))
                   for s in (1, 2)]
        for t in threads:
            t.start()
        try:
            for _ in range(3):
                svc.split_shard(
                    int(np.argmax([len(s) for s in svc.shards])))
                svc.merge_shards(0)
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert errors == []
        assert svc.splits == 3 and svc.merges == 3
        sk, _ = svc.contents()
        assert np.array_equal(sk, keys)


class TestRebalance:
    def test_hot_shard_splits_on_drift(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1, hot_share=0.8,
            min_rebalance_ops=256))
        # hammer one shard's keyspace only
        hot_keys = keys[keys < svc.router.cuts[0]]
        rng = np.random.default_rng(9)
        for _ in range(4):
            svc.lookup_batch(rng.choice(hot_keys, 128))
        action = svc.maybe_rebalance()
        assert action is not None and "split" in action
        assert svc.n_shards == 3

    def test_cold_pair_merges(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=4, machine=m1, hot_share=2.0,  # splits disabled
            cold_share=0.2, min_rebalance_ops=128))
        # traffic only on the last shard: the coldest adjacent pair
        # (two of the idle shards) merges
        hot_keys = keys[keys >= svc.router.cuts[-1]]
        rng = np.random.default_rng(10)
        for _ in range(2):
            svc.lookup_batch(rng.choice(hot_keys, 128))
        action = svc.maybe_rebalance()
        assert action is not None and "merged" in action
        assert svc.n_shards == 3

    def test_below_min_ops_is_noop(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1, min_rebalance_ops=10 ** 9))
        svc.lookup_batch(keys[:64])
        assert svc.maybe_rebalance() is None
        assert svc.n_shards == 2


class TestObservability:
    def test_publish_service_exports_gauges(self, data, m1):
        keys, values = data
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1,
            quota=QuotaConfig(tenants={"t": (100, 0.0)})))
        svc.lookup_batch(keys[:50], tenant="t")
        registry = MetricsRegistry()
        publish_service(registry, svc)
        snap = registry.snapshot()
        assert snap["service.shards"] == 2
        assert snap["service.shard.lookups{shard=0}"] \
            + snap["service.shard.lookups{shard=1}"] == 50
        assert snap["service.tenant.admitted_ops{tenant=t}"] == 50
        assert snap["service.latency.p99_ns"] > 0

    def test_service_spans_emitted(self, data, m1):
        keys, values = data
        obs = Observability()
        svc = IndexService.build(keys, values, ServiceConfig(
            n_shards=2, machine=m1), obs=obs)
        svc.lookup_batch(keys[:32])
        names = {e.get("name") for e in obs.tracer.events}
        assert "service.lookup" in names
        assert "shard.lookup" in names
