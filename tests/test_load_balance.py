"""Load balancing scheme (section 5.5, Algorithm 1, Fig 18)."""

import numpy as np
import pytest

from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(4096, seed=17)


@pytest.fixture()
def balancer_m2(data, m2):
    keys, values = data
    tree = ImplicitHBPlusTree(keys, values, machine=m2)
    return LoadBalancer(tree)


class TestPerLevelCosts:
    def test_profiles_measured_per_level(self, balancer_m2):
        h = balancer_m2.tree.cpu_tree.height
        assert len(balancer_m2.cpu_level_ns) == h
        assert len(balancer_m2.gpu_level_ns) == h
        assert all(c > 0 for c in balancer_m2.cpu_level_ns)
        assert all(g > 0 for g in balancer_m2.gpu_level_ns)

    def test_top_levels_cheaper_on_cpu(self, balancer_m2):
        """Root and top levels are cache resident -> cheap; bottom
        levels miss (the rationale for giving the *top* to the CPU)."""
        costs = balancer_m2.cpu_level_ns
        assert costs[0] <= costs[-1]

    def test_leaf_cost_positive(self, balancer_m2):
        assert balancer_m2.leaf_ns > 0


class TestEquation4:
    def test_all_gpu_extreme(self, balancer_m2):
        # Equation 4 as printed: at D=0, R fraction of level-D work is
        # on the CPU, so R=0 is the true all-GPU extreme (leaf only)
        time_gpu, time_cpu = balancer_m2.sample_times(0, 0.0)
        assert time_gpu > 0
        expected_cpu = (
            16384 * balancer_m2.leaf_ns / balancer_m2.cpu_model.threads
        )
        assert time_cpu == pytest.approx(expected_cpu, rel=0.01)

    def test_deeper_split_shifts_work_to_cpu(self, balancer_m2):
        g0, c0 = balancer_m2.sample_times(0, 1.0)
        g2, c2 = balancer_m2.sample_times(2, 1.0)
        assert g2 < g0
        assert c2 > c0

    def test_ratio_interpolates(self, balancer_m2):
        g_lo, c_lo = balancer_m2.sample_times(1, 0.0)
        g_mid, c_mid = balancer_m2.sample_times(1, 0.5)
        g_hi, c_hi = balancer_m2.sample_times(1, 1.0)
        assert c_lo <= c_mid <= c_hi
        assert g_hi <= g_mid <= g_lo

    def test_balanced_cost_is_max(self, balancer_m2):
        g, c = balancer_m2.sample_times(1, 0.5)
        assert balancer_m2.balanced_cost_ns(1, 0.5) == max(g, c)


class TestDiscovery:
    def test_discovery_runs_algorithm1(self, balancer_m2):
        result = balancer_m2.discover()
        assert 0 <= result.depth <= balancer_m2.tree.cpu_tree.height
        assert 0.0 <= result.ratio <= 1.0
        # linear phase + exactly 4 binary-search steps
        assert result.sample_count >= 5

    def test_discovered_point_near_optimum(self, balancer_m2):
        """The discovered (D, R) should be within 15% of the exhaustive
        best over a dense grid."""
        result = balancer_m2.discover()
        found = balancer_m2.balanced_cost_ns(result.depth, result.ratio)
        h = balancer_m2.tree.cpu_tree.height
        best = min(
            balancer_m2.balanced_cost_ns(d, r / 16)
            for d in range(h + 1)
            for r in range(17)
        )
        assert found <= best * 1.15

    def test_discovery_on_gpu_strong_machine_keeps_gpu_loaded(self, data, m1):
        """On M1 (strong GPU) the discovery should park most work on
        the GPU (small D)."""
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=m1)
        balancer = LoadBalancer(tree)
        result = balancer.discover()
        assert result.depth <= 2


class TestBalancedLookup:
    def test_results_match_plain_hybrid(self, balancer_m2, data):
        keys, values = data
        balancer_m2.discover()
        out = balancer_m2.lookup_batch(keys[:1024])
        assert np.array_equal(out, values[:1024])

    def test_results_for_various_splits(self, balancer_m2, data):
        keys, values = data
        h = balancer_m2.tree.cpu_tree.height
        for depth in range(h + 1):
            for ratio in (0.0, 0.3, 1.0):
                balancer_m2.depth = depth
                balancer_m2.ratio = ratio
                out = balancer_m2.lookup_batch(keys[:256])
                assert np.array_equal(out, values[:256]), (depth, ratio)

    def test_absent_keys(self, balancer_m2, data):
        keys, _values = data
        balancer_m2.discover()
        probe = np.asarray([int(keys.max()) + 9], dtype=np.uint64)
        out = balancer_m2.lookup_batch(probe)
        assert out[0] == balancer_m2.tree.spec.max_value

    def test_bucket_costs_reflect_split(self, balancer_m2):
        balancer_m2.discover()
        costs = balancer_m2.bucket_costs()
        g, c = balancer_m2.sample_times(
            balancer_m2.depth, balancer_m2.ratio
        )
        assert costs.t2 == pytest.approx(g)
        assert costs.t4 == pytest.approx(c)


class TestFig18Shape:
    def test_balancing_helps_on_weak_gpu(self, balancer_m2):
        """Section 6.5: on M2 the balanced split beats the all-GPU
        split."""
        plain = balancer_m2.balanced_cost_ns(0, 1.0)
        balancer_m2.discover()
        balanced = balancer_m2.balanced_cost_ns(
            balancer_m2.depth, balancer_m2.ratio
        )
        assert balanced < plain
