"""Load balancing scheme (section 5.5, Algorithm 1, Fig 18)."""

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.core.load_balance import LoadBalancer
from repro.platform.configs import machine_m2
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(4096, seed=17)


@pytest.fixture()
def balancer_m2(data, m2):
    keys, values = data
    tree = ImplicitHBPlusTree(keys, values, machine=m2)
    return LoadBalancer(tree)


class TestPerLevelCosts:
    def test_profiles_measured_per_level(self, balancer_m2):
        h = balancer_m2.tree.cpu_tree.height
        assert len(balancer_m2.cpu_level_ns) == h
        assert len(balancer_m2.gpu_level_ns) == h
        assert all(c > 0 for c in balancer_m2.cpu_level_ns)
        assert all(g > 0 for g in balancer_m2.gpu_level_ns)

    def test_top_levels_cheaper_on_cpu(self, balancer_m2):
        """Root and top levels are cache resident -> cheap; bottom
        levels miss (the rationale for giving the *top* to the CPU)."""
        costs = balancer_m2.cpu_level_ns
        assert costs[0] <= costs[-1]

    def test_leaf_cost_positive(self, balancer_m2):
        assert balancer_m2.leaf_ns > 0


class TestEquation4:
    def test_all_gpu_extreme(self, balancer_m2):
        # Equation 4 as printed: at D=0, R fraction of level-D work is
        # on the CPU, so R=0 is the true all-GPU extreme (leaf only)
        time_gpu, time_cpu = balancer_m2.sample_times(0, 0.0)
        assert time_gpu > 0
        expected_cpu = (
            16384 * balancer_m2.leaf_ns / balancer_m2.cpu_model.threads
        )
        assert time_cpu == pytest.approx(expected_cpu, rel=0.01)

    def test_deeper_split_shifts_work_to_cpu(self, balancer_m2):
        g0, c0 = balancer_m2.sample_times(0, 1.0)
        g2, c2 = balancer_m2.sample_times(2, 1.0)
        assert g2 < g0
        assert c2 > c0

    def test_ratio_interpolates(self, balancer_m2):
        g_lo, c_lo = balancer_m2.sample_times(1, 0.0)
        g_mid, c_mid = balancer_m2.sample_times(1, 0.5)
        g_hi, c_hi = balancer_m2.sample_times(1, 1.0)
        assert c_lo <= c_mid <= c_hi
        assert g_hi <= g_mid <= g_lo

    def test_balanced_cost_is_max(self, balancer_m2):
        g, c = balancer_m2.sample_times(1, 0.5)
        assert balancer_m2.balanced_cost_ns(1, 0.5) == max(g, c)


class TestDiscovery:
    def test_discovery_runs_algorithm1(self, balancer_m2):
        result = balancer_m2.discover()
        assert 0 <= result.depth <= balancer_m2.tree.cpu_tree.height
        assert 0.0 <= result.ratio <= 1.0
        # linear phase + exactly 4 binary-search steps
        assert result.sample_count >= 5

    def test_discovered_point_near_optimum(self, balancer_m2):
        """The discovered (D, R) should be within 15% of the exhaustive
        best over a dense grid."""
        result = balancer_m2.discover()
        found = balancer_m2.balanced_cost_ns(result.depth, result.ratio)
        h = balancer_m2.tree.cpu_tree.height
        best = min(
            balancer_m2.balanced_cost_ns(d, r / 16)
            for d in range(h + 1)
            for r in range(17)
        )
        assert found <= best * 1.15

    def test_discovery_on_gpu_strong_machine_keeps_gpu_loaded(self, data, m1):
        """On M1 (strong GPU) the discovery should park most work on
        the GPU (small D)."""
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=m1)
        balancer = LoadBalancer(tree)
        result = balancer.discover()
        assert result.depth <= 2


class TestBalancedLookup:
    def test_results_match_plain_hybrid(self, balancer_m2, data):
        keys, values = data
        balancer_m2.discover()
        out = balancer_m2.lookup_batch(keys[:1024])
        assert np.array_equal(out, values[:1024])

    def test_results_for_various_splits(self, balancer_m2, data):
        keys, values = data
        h = balancer_m2.tree.cpu_tree.height
        for depth in range(h + 1):
            for ratio in (0.0, 0.3, 1.0):
                balancer_m2.depth = depth
                balancer_m2.ratio = ratio
                out = balancer_m2.lookup_batch(keys[:256])
                assert np.array_equal(out, values[:256]), (depth, ratio)

    def test_absent_keys(self, balancer_m2, data):
        keys, _values = data
        balancer_m2.discover()
        probe = np.asarray([int(keys.max()) + 9], dtype=np.uint64)
        out = balancer_m2.lookup_batch(probe)
        assert out[0] == balancer_m2.tree.spec.max_value

    def test_bucket_costs_reflect_split(self, balancer_m2):
        balancer_m2.discover()
        costs = balancer_m2.bucket_costs()
        g, c = balancer_m2.sample_times(
            balancer_m2.depth, balancer_m2.ratio
        )
        assert costs.t2 == pytest.approx(g)
        assert costs.t4 == pytest.approx(c)


class TestFig18Shape:
    def test_balancing_helps_on_weak_gpu(self, balancer_m2):
        """Section 6.5: on M2 the balanced split beats the all-GPU
        split."""
        plain = balancer_m2.balanced_cost_ns(0, 1.0)
        balancer_m2.discover()
        balanced = balancer_m2.balanced_cost_ns(
            balancer_m2.depth, balancer_m2.ratio
        )
        assert balanced < plain


class TestAllCpuSplitCosts:
    """D == h means no kernel launch, no PCIe — cost model included."""

    def test_depth_h_charges_no_gpu_time(self, balancer_m2):
        h = balancer_m2.height
        time_gpu, time_cpu = balancer_m2.sample_times(h, 1.0)
        assert time_gpu == 0.0
        assert time_cpu > 0.0

    def test_depth_h_minus_1_full_ratio_is_all_cpu(self, balancer_m2):
        """R == 1 at D == h-1 sends the last inner level to the CPU
        too; the GPU has nothing left."""
        h = balancer_m2.height
        time_gpu, _ = balancer_m2.sample_times(h - 1, 1.0)
        assert time_gpu == 0.0
        assert not balancer_m2.split_serves_gpu(h - 1, 1.0)

    def test_gpu_serving_split_pays_kernel_init(self, balancer_m2):
        time_gpu, _ = balancer_m2.sample_times(0, 0.0)
        assert time_gpu >= balancer_m2.machine.gpu.kernel_init_ns

    def test_all_cpu_bucket_costs_skip_pcie(self, balancer_m2):
        balancer_m2.depth = balancer_m2.height
        balancer_m2.ratio = 1.0
        costs = balancer_m2.bucket_costs()
        assert costs.t1 == 0.0
        assert costs.t2 == 0.0
        assert costs.t3 == 0.0
        assert costs.t4 > 0.0


class TestDiscoveryCommitsEvaluatedPoint:
    """Algorithm 1's final R adjustment is never itself sampled; the
    committed (D, R) must be a measured point, not an extrapolation."""

    def test_committed_point_was_sampled(self, balancer_m2):
        result = balancer_m2.discover()
        sampled = {(d, r) for d, r, _g, _c in result.samples}
        assert (result.depth, result.ratio) in sampled

    def test_cost_is_minimum_over_samples(self, balancer_m2):
        result = balancer_m2.discover()
        best = min(max(g, c) for _d, _r, g, c in result.samples)
        assert result.cost_ns == best
        assert result.cost_ns == pytest.approx(
            balancer_m2.balanced_cost_ns(result.depth, result.ratio)
        )


class TestReprofileSampling:
    def test_default_sample_is_without_replacement(self, data, m2,
                                                   monkeypatch):
        """Sampling stored keys *with* replacement skews per-level miss
        rates on small trees; every profiled key must be distinct."""
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=m2)
        captured = {}
        original = ImplicitHBPlusTree.modeled_transactions

        def capture(self, sample, kernel=None):
            captured["sample"] = np.asarray(sample)
            return original(self, sample, kernel=kernel)

        monkeypatch.setattr(
            ImplicitHBPlusTree, "modeled_transactions", capture
        )
        LoadBalancer(tree)
        sample = captured["sample"]
        assert len(sample) == min(2048, len(keys))
        assert len(np.unique(sample)) == len(sample)

    def test_reprofile_accepts_live_sample(self, balancer_m2, data):
        keys, _values = data
        balancer_m2.reprofile(keys[:512])
        assert len(balancer_m2.cpu_level_ns) == balancer_m2.height
        with pytest.raises(ValueError):
            balancer_m2.reprofile(np.empty(0, dtype=np.uint64))


@functools.lru_cache(maxsize=1)
def _grid_setup():
    keys, values = generate_dataset(2048, seed=17)
    tree = ImplicitHBPlusTree(keys, values, machine=machine_m2())
    balancer = LoadBalancer(tree)
    return keys, values, tree, balancer


class TestSplitGridBitIdentity:
    """A (D, R) split moves which processor walks which level, never
    what the walk returns — property-tested over the whole grid."""

    @given(
        depth_frac=st.integers(0, 6),
        ratio=st.sampled_from([0.0, 0.5, 1.0]),
        picks=st.lists(st.integers(0, 2047), min_size=1, max_size=64),
        offset=st.sampled_from([0, 1]),
    )
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_unbalanced_tree(self, depth_frac, ratio, picks,
                                     offset):
        keys, _values, tree, balancer = _grid_setup()
        h = tree.cpu_tree.height
        balancer.depth = min(depth_frac, h)  # includes D=0 and D=h
        balancer.ratio = ratio
        # offset=1 shifts every query off a stored key (misses included)
        queries = keys[np.asarray(picks)] + np.uint64(offset)
        out = balancer.lookup_batch(queries)
        expected = tree.lookup_batch(queries)
        assert np.array_equal(out, expected)
