"""Analytic GPU L2 model."""

import pytest

from repro.gpusim.l2 import (
    effective_dram_transactions,
    l2_speedup_estimate,
    level_hit_rates,
)


class TestHitRates:
    def test_everything_fits(self):
        assert level_hit_rates([100, 200], 1000) == [1.0, 1.0]

    def test_nothing_fits(self):
        assert level_hit_rates([100, 200], 0) == [0.0, 0.0]

    def test_top_down_occupancy(self):
        rates = level_hit_rates([100, 200, 400], 200)
        assert rates[0] == 1.0
        assert rates[1] == pytest.approx(0.5)
        assert rates[2] == 0.0

    def test_empty_level(self):
        assert level_hit_rates([0, 100], 50) == [1.0, 0.5]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            level_hit_rates([10], -1)


class TestEffectiveTransactions:
    def test_split_adds_up(self):
        dram, served = effective_dram_transactions(
            [1.0, 1.0, 1.0], [64, 64, 64], 96
        )
        assert dram + served == pytest.approx(3.0)
        assert served == pytest.approx(1.5)

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            effective_dram_transactions([1.0], [64, 64], 100)


class TestSpeedup:
    def test_no_l2_no_speedup(self):
        assert l2_speedup_estimate([1, 1, 1], [64, 64, 64], 0) == 1.0

    def test_full_residency_approaches_ratio(self):
        s = l2_speedup_estimate([1, 1], [64, 64], 10**6,
                                l2_bandwidth_ratio=4.0)
        assert s == pytest.approx(4.0)

    def test_partial_residency_between(self):
        s = l2_speedup_estimate([1, 1, 1, 1], [64, 512, 4096, 32768],
                                1024)
        assert 1.0 < s < 4.0

    def test_monotone_in_capacity(self):
        levels = [64, 512, 4096, 32768]
        tx = [1.0] * 4
        speedups = [l2_speedup_estimate(tx, levels, c)
                    for c in (0, 512, 4096, 40000)]
        assert speedups == sorted(speedups)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            l2_speedup_estimate([1], [64], 64, l2_bandwidth_ratio=0)

    def test_zero_traffic(self):
        assert l2_speedup_estimate([], [], 100) == 1.0


class TestRealisticTree:
    def test_gtx780_on_scaled_tree(self, m1):
        """A 1.5MB (scaled) L2 over a 2^18-key implicit I-segment:
        modest but real speedup from the hot top levels."""
        from repro.core.hbtree_implicit import ImplicitHBPlusTree
        from repro.workloads.generators import generate_dataset
        keys, values = generate_dataset(1 << 15, seed=97)
        tree = ImplicitHBPlusTree(keys, values, machine=m1)
        level_bytes = [s * 8 for s in tree.level_sizes]
        tx = [1.0] * tree.gpu_depth  # ~one line per level per query
        l2 = int(1.5 * 1024 * 1024) // 64  # scaled like the other caps
        s = l2_speedup_estimate(tx, level_bytes, l2)
        assert 1.05 < s < 4.0
