"""Implicit CPU-optimized B+-tree (section 4.1, Fig 2 a-b)."""

import math

import numpy as np
import pytest

from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.node_search import NodeSearchAlgorithm
from repro.keys import KEY64
from repro.memsim.mainmem import MemorySystem, PageConfig


def build(keys, values, **kw):
    return ImplicitCpuBPlusTree(keys, values, **kw)


class TestConstruction:
    def test_all_keys_found(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_scalar_matches_batch(self, small_dataset64):
        keys, values = small_dataset64
        tree = build(keys, values)
        for k, v in zip(keys[:64].tolist(), values[:64].tolist()):
            assert tree.lookup(k) == v

    def test_height_formula(self):
        """H = ceil(log9(N/4 + 1)) for the full 64-bit tree."""
        for exp in range(8, 15):
            n = 1 << exp
            keys = np.arange(1, n + 1, dtype=np.uint64)
            tree = build(keys, keys)
            expected = math.ceil(math.log(n / 4 + 1, 9))
            assert tree.height == expected, f"n={n}"

    def test_lines_per_query_is_height_plus_one(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        assert tree.lines_per_query == tree.height + 1

    def test_single_leaf_tree(self):
        tree = build([5, 1, 3], [50, 10, 30])
        assert tree.height == 0
        assert tree.lookup(3) == 30
        assert tree.lookup(2) is None

    def test_one_tuple(self):
        tree = build([7], [70])
        assert tree.lookup(7) == 70
        assert len(tree) == 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            build([], [])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            build([1, 1, 2], [1, 2, 3])

    def test_sentinel_key_rejected(self):
        with pytest.raises(ValueError):
            build([KEY64.max_value], [1])

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            build([1, 2], [1])

    def test_unsorted_input_sorted_internally(self):
        tree = build([9, 1, 5], [90, 10, 50])
        assert tree.items() == [(1, 10), (5, 50), (9, 90)]

    def test_invalid_fanout_rejected(self, small_dataset64):
        keys, values = small_dataset64
        with pytest.raises(ValueError):
            build(keys, values, fanout=1)
        with pytest.raises(ValueError):
            build(keys, values, fanout=12)


class TestLookup:
    def test_absent_keys_return_none(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        present = set(keys.tolist())
        rng = np.random.default_rng(0)
        probes = [int(x) for x in rng.choice(2**62, size=50)
                  if int(x) not in present]
        for p in probes:
            assert tree.lookup(p) is None

    def test_batch_not_found_sentinel(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        out = tree.lookup_batch(np.asarray([KEY64.max_value - 1],
                                           dtype=np.uint64))
        assert out[0] == KEY64.max_value

    def test_probe_above_global_max(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        assert tree.lookup(int(keys.max()) + 1) is None

    def test_probe_below_global_min(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        lo = int(np.min(keys))
        if lo > 0:
            assert tree.lookup(lo - 1) is None

    def test_contains(self, small_dataset64):
        keys, values = small_dataset64
        tree = build(keys, values)
        assert int(keys[0]) in tree
        assert (int(keys.max()) + 1) not in tree

    @pytest.mark.parametrize("algo", list(NodeSearchAlgorithm))
    def test_all_algorithms_agree(self, small_dataset64, algo):
        keys, values = small_dataset64
        tree = build(keys, values, algorithm=algo)
        for k, v in zip(keys[:48].tolist(), values[:48].tolist()):
            assert tree.lookup(k) == v


class TestHybridFanout:
    def test_fanout8_correct(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values, fanout=8)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_fanout8_deeper_or_equal(self, dataset64):
        keys, values = dataset64
        t9 = build(keys, values, fanout=9)
        t8 = build(keys, values, fanout=8)
        assert t8.height >= t9.height

    def test_catch_all_pins(self, dataset64):
        """Every hybrid-style node's last used key slot is the sentinel."""
        keys, values = dataset64
        tree = build(keys, values, fanout=8)
        for level in tree.inner_levels:
            assert np.all(level[:, -1] == KEY64.max_value)

    def test_overflow_probe_routes_to_rightmost_leaf(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values, fanout=8)
        assert tree.lookup(int(keys.max()) + 999) is None


class Test32Bit:
    def test_lookup(self, dataset32):
        keys, values = dataset32
        tree = build(keys, values, key_bits=32)
        assert np.array_equal(tree.lookup_batch(keys), values)

    def test_height_formula_32(self):
        n = 1 << 14
        keys = np.arange(1, n + 1, dtype=np.uint32)
        tree = ImplicitCpuBPlusTree(keys, keys, key_bits=32)
        expected = math.ceil(math.log(n / 8 + 1, 17))
        assert tree.height == expected


class TestRangeQueries:
    def test_full_window(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        sk = np.sort(keys)
        got = tree.range_query(int(sk[100]), int(sk[160]))
        assert len(got) == 61
        assert [k for k, _ in got] == sorted(sk[100:161].tolist())

    def test_values_correct(self, small_dataset64):
        keys, values = small_dataset64
        tree = build(keys, values)
        lookup = dict(zip(keys.tolist(), values.tolist()))
        sk = np.sort(keys)
        for k, v in tree.range_query(int(sk[3]), int(sk[20])):
            assert lookup[k] == v

    def test_empty_range(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        assert tree.range_query(10, 5) == []

    def test_range_beyond_max(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        hi = int(keys.max())
        got = tree.range_query(hi, hi + 10**6)
        assert got[0][0] == hi

    def test_single_key_range(self, dataset64):
        keys, values = dataset64
        tree = build(keys, values)
        k = int(keys[7])
        got = tree.range_query(k, k)
        assert got == [(k, int(values[7]))]


class TestRebuild:
    def test_rebuild_replaces_contents(self, dataset64, small_dataset64):
        keys, values = dataset64
        nk, nv = small_dataset64
        tree = build(keys, values)
        tree.rebuild(nk, nv)
        assert np.array_equal(tree.lookup_batch(nk), nv)
        assert len(tree) == len(nk)

    def test_rebuild_with_mem_reallocates_segments(self, dataset64, mem):
        keys, values = dataset64
        tree = build(keys, values, mem=mem)
        old_i = tree.i_segment
        tree.rebuild(keys[:100], values[:100])
        assert tree.i_segment is not old_i


class TestInstrumentation:
    def test_lookup_touches_expected_lines(self, dataset64, mem):
        keys, values = dataset64
        tree = build(keys, values, mem=mem)
        mem.reset_counters()
        tree.lookup(int(keys[0]))
        assert mem.counters.line_accesses == tree.lines_per_query
        assert mem.counters.queries == 1

    def test_page_config_controls_segment_kinds(self, dataset64):
        keys, values = dataset64
        mem = MemorySystem()
        tree = build(keys, values, mem=mem,
                     page_config=PageConfig.HUGE_SMALL)
        assert tree.i_segment.page_kind.value == "huge"
        assert tree.l_segment.page_kind.value == "small"

    def test_segment_sizes(self, dataset64, mem):
        keys, values = dataset64
        tree = build(keys, values, mem=mem)
        assert tree.i_segment.size == tree.i_segment_bytes
        assert tree.l_segment.size == tree.l_segment_bytes
        assert tree.i_segment_bytes == tree.num_inner_nodes * 64
