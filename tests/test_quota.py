"""Per-tenant token-bucket quotas: edge cases and concurrency safety."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.quota import (
    QuotaConfig,
    QuotaExceeded,
    TenantQuotas,
    TokenBucket,
)


class TestTokenBucket:
    def test_all_or_nothing(self):
        b = TokenBucket(10)
        assert b.try_acquire(10)
        assert not b.try_acquire(1)
        assert b.available == 0

    def test_rejection_spends_nothing(self):
        b = TokenBucket(10)
        assert b.try_acquire(4)
        assert not b.try_acquire(7)  # would overdraw
        assert b.available == 6      # the failed batch cost nothing
        assert b.try_acquire(6)

    def test_zero_cost_batch_always_admitted(self):
        b = TokenBucket(0)
        assert b.try_acquire(0)

    def test_manual_refill_caps_at_capacity(self):
        b = TokenBucket(10, refill_per_s=4.0)
        assert b.try_acquire(10)
        b.advance(1.0)
        assert b.available == 4.0
        b.advance(100.0)
        assert b.available == 10.0

    def test_negative_inputs_raise(self):
        with pytest.raises(ValueError):
            TokenBucket(-1)
        with pytest.raises(ValueError):
            TokenBucket(1, refill_per_s=-1)
        b = TokenBucket(1)
        with pytest.raises(ValueError):
            b.try_acquire(-1)
        with pytest.raises(ValueError):
            b.advance(-0.5)

    def test_wall_clock_mode_refills(self):
        t = [0.0]
        b = TokenBucket(10, refill_per_s=2.0, clock=lambda: t[0])
        assert b.try_acquire(10)
        t[0] = 3.0
        assert b.available == 6.0
        assert b.try_acquire(6)


class TestZeroQuotaTenant:
    """A configured capacity of 0 is a valid always-reject quota."""

    def test_zero_quota_rejects_everything(self):
        quotas = TenantQuotas()
        quotas.set_quota("banned", 0)
        assert not quotas.try_charge("banned", 1)
        with pytest.raises(QuotaExceeded):
            quotas.charge("banned", 1)
        # the empty batch is still admitted (it costs nothing)
        assert quotas.try_charge("banned", 0)

    def test_zero_quota_with_refill_recovers(self):
        quotas = TenantQuotas()
        quotas.set_quota("throttled", 0, refill_per_s=5.0)
        assert not quotas.try_charge("throttled", 3)
        quotas.advance(1.0)
        # refill credits above capacity are clamped: capacity 0 means
        # the bucket can never hold tokens
        assert not quotas.try_charge("throttled", 1)


class TestExactExhaustion:
    """Quota exactly exhausted on a batch boundary: the boundary batch
    is admitted, the next op is not."""

    def test_boundary_batch_admits_then_rejects(self):
        quotas = TenantQuotas()
        quotas.set_quota("t", 100)
        assert quotas.try_charge("t", 60)
        assert quotas.try_charge("t", 40)   # lands exactly on 0
        assert not quotas.try_charge("t", 1)
        stats = quotas.stats()["t"]
        assert stats.admitted_ops == 100
        assert stats.rejected_ops == 1
        assert stats.available == 0

    def test_exact_refill_boundary(self):
        quotas = TenantQuotas()
        quotas.set_quota("t", 10, refill_per_s=10.0)
        assert quotas.try_charge("t", 10)
        assert not quotas.try_charge("t", 10)
        quotas.advance(1.0)              # exactly one batch's worth
        assert quotas.try_charge("t", 10)
        assert not quotas.try_charge("t", 1)


class TestDefaultsAndConfig:
    def test_unknown_tenant_is_unlimited_without_default(self):
        quotas = TenantQuotas()
        assert quotas.try_charge("anyone", 10 ** 9)
        quotas.charge("anyone", 10 ** 9)  # never raises

    def test_default_capacity_applies_lazily(self):
        quotas = TenantQuotas(default_capacity=5)
        assert quotas.try_charge("new", 5)
        assert not quotas.try_charge("new", 1)
        # a second unknown tenant gets its own bucket, not the same one
        assert quotas.try_charge("other", 5)

    def test_quota_config_builds_shapes(self):
        quotas = QuotaConfig(
            default_capacity=8,
            tenants={"a": (2, 1.0), "b": 3},
        ).build()
        assert quotas.bucket("a").capacity == 2
        assert quotas.bucket("a").refill_per_s == 1.0
        assert quotas.bucket("b").capacity == 3
        assert quotas.bucket("c").capacity == 8


class TestConcurrentSubmitters:
    """The invariant: however many threads race, admitted ops never
    exceed the budget and nothing is double-spent."""

    @pytest.mark.concurrency
    def test_no_double_spend_under_contention(self):
        capacity = 1000
        bucket = TokenBucket(capacity)
        admitted = []

        def submitter(seed: int) -> None:
            batch = 7 + seed  # unequal batch sizes race differently
            got = 0
            for _ in range(200):
                if bucket.try_acquire(batch):
                    got += batch
            admitted.append(got)

        threads = [threading.Thread(target=submitter, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(admitted) <= capacity
        assert sum(admitted) == bucket.admitted_ops
        assert bucket.available == capacity - sum(admitted)

    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(min_value=0, max_value=200),
        batches=st.lists(st.integers(min_value=0, max_value=50),
                         min_size=1, max_size=24),
        refills=st.lists(st.floats(min_value=0.0, max_value=5.0,
                                   allow_nan=False),
                         min_size=0, max_size=4),
    )
    def test_admitted_never_exceeds_budget(self, capacity, batches,
                                           refills):
        """Property: admitted <= capacity + total refill credit, and
        the final balance is exactly budget - admitted (clamped)."""
        refill_rate = 3.0
        bucket = TokenBucket(capacity, refill_per_s=refill_rate)
        threads = []
        for i, batch in enumerate(batches):
            threads.append(threading.Thread(
                target=bucket.try_acquire, args=(batch,)
            ))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for dt in refills:
            bucket.advance(dt)
        budget = capacity + refill_rate * sum(refills)
        assert bucket.admitted_ops <= budget + 1e-6
        assert bucket.admitted_ops + bucket.rejected_ops == sum(batches)
        assert 0 <= bucket.available <= capacity
