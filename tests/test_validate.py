"""Self-validation utilities."""

import numpy as np
import pytest

from repro.core.hbtree import HBPlusTree
from repro.core.hbtree_implicit import ImplicitHBPlusTree
from repro.cpu.btree_implicit import ImplicitCpuBPlusTree
from repro.cpu.btree_regular import RegularCpuBPlusTree
from repro.cpu.css_tree import CssTree
from repro.cpu.fast_tree import FastTree
from repro.validate import ValidationError, validate_index
from repro.workloads.generators import generate_dataset


@pytest.fixture(scope="module")
def data():
    return generate_dataset(2500, seed=81)


class TestHealthyTreesValidate:
    def test_implicit(self, data):
        keys, values = data
        validate_index(ImplicitCpuBPlusTree(keys, values))

    def test_regular(self, data):
        keys, values = data
        tree = RegularCpuBPlusTree(keys, values)
        tree.insert(int(keys.max()) + 1, 5)
        validate_index(tree)

    def test_css(self, data):
        keys, values = data
        validate_index(CssTree(keys, values))

    def test_fast(self, data):
        keys, values = data
        validate_index(FastTree(keys, values))

    def test_hybrid_implicit(self, data, m1):
        keys, values = data
        validate_index(ImplicitHBPlusTree(keys, values, machine=m1))

    def test_hybrid_regular(self, data, m1):
        keys, values = data
        validate_index(HBPlusTree(keys, values, machine=m1))

    def test_unknown_type(self):
        with pytest.raises(TypeError):
            validate_index(object())


class TestCorruptionDetected:
    def test_implicit_unsorted_leaf(self, data):
        keys, values = data
        tree = ImplicitCpuBPlusTree(keys, values)
        tree.leaf_keys[0, 0], tree.leaf_keys[0, 1] = (
            tree.leaf_keys[0, 1].copy(), tree.leaf_keys[0, 0].copy()
        )
        with pytest.raises(ValidationError):
            validate_index(tree)

    def test_implicit_inner_corruption(self, data):
        keys, values = data
        tree = ImplicitCpuBPlusTree(keys, values)
        tree.inner_levels[0][0, 0] = tree.spec.max_value - 1
        tree.inner_levels[0][0, 1] = 0  # now unsorted
        with pytest.raises(ValidationError):
            validate_index(tree)

    def test_regular_broken_chain(self, data):
        keys, values = data
        tree = RegularCpuBPlusTree(keys, values)
        size = int(tree.leaves.size[tree._first_leaf])
        tree.leaves.keys[tree._first_leaf, 0] = tree.leaves.keys[
            tree._first_leaf, size - 1
        ]
        with pytest.raises(ValidationError):
            validate_index(tree)

    def test_css_corrupted_data(self, data):
        keys, values = data
        tree = CssTree(keys, values)
        tree.sorted_keys[5] = tree.sorted_keys[4]
        with pytest.raises(ValidationError):
            validate_index(tree)

    def test_hybrid_stale_mirror(self, data, m1):
        """A mirror that no longer matches the CPU tree must be caught
        — the failure mode the synchronized updater exists to avoid."""
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=m1)
        new_keys, new_values = generate_dataset(2500, seed=82)
        tree.cpu_tree.rebuild(new_keys, new_values)  # no mirror refresh!
        with pytest.raises(ValidationError):
            validate_index(tree)

    def test_hybrid_mirror_bitflip(self, data, m1):
        keys, values = data
        tree = ImplicitHBPlusTree(keys, values, machine=m1)
        tree.iseg_buffer.array[0] += np.uint64(1)
        with pytest.raises(ValidationError):
            validate_index(tree)
