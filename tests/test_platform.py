"""Machine configs and scaling (DESIGN.md section 4)."""

import pytest

from repro.platform.configs import (
    SCALE_FACTOR,
    MachineConfig,
    machine_m1,
    machine_m2,
)


class TestM1:
    def test_identity(self, m1):
        assert "E5-2665" in m1.cpu.name
        assert "780" in m1.gpu.name
        assert m1.cpu.threads == 16
        assert m1.gpu.sms == 12

    def test_no_avx2_on_m1(self, m1):
        # the reason Fig 8 runs on M2
        assert not m1.cpu.has_avx2

    def test_scaled_capacities(self, m1):
        assert m1.cpu.llc_bytes == 20 * 1024**2 // (SCALE_FACTOR * 8)
        assert m1.gpu.device_mem_bytes == 3 * 1024**3 // SCALE_FACTOR
        assert m1.cpu.huge_page == 1024**3 // SCALE_FACTOR

    def test_four_huge_tlb_entries(self, m1):
        assert m1.cpu.tlb_entries_huge == 4

    def test_page_walk_asymmetry(self, m1):
        # 5 accesses for 4K pages vs 3 for 1G pages
        assert m1.cpu.page_walk_accesses_small == 5
        assert m1.cpu.page_walk_accesses_huge == 3
        assert m1.cpu.page_walk_cost_huge_ns < m1.cpu.page_walk_cost_small_ns

    def test_bucket_and_pipeline_defaults(self, m1):
        assert m1.bucket_size == 16 * 1024
        assert m1.software_pipeline_len == 16


class TestM2:
    def test_identity(self, m2):
        assert "4800MQ" in m2.cpu.name
        assert "770M" in m2.gpu.name
        assert m2.cpu.has_avx2

    def test_weaker_gpu_than_m1(self, m1, m2):
        assert (m2.gpu.effective_bandwidth_gbs
                < m1.gpu.effective_bandwidth_gbs / 3)

    def test_weaker_cpu_memory(self, m1, m2):
        assert m2.cpu.mem_bandwidth_gbs < m1.cpu.mem_bandwidth_gbs
        assert m2.cpu.llc_bytes < m1.cpu.llc_bytes


class TestDerived:
    def test_cycle_ns(self, m1):
        assert m1.cpu.cycle_ns == pytest.approx(1 / 2.4)

    def test_effective_bandwidth(self, m1):
        assert m1.gpu.effective_bandwidth_gbs == pytest.approx(
            m1.gpu.mem_bandwidth_gbs * m1.gpu.random_access_efficiency
        )

    def test_pcie_transfer_model(self, m1):
        t = m1.pcie.transfer_ns(12_000)
        assert t == pytest.approx(m1.pcie.t_init_ns + 1000.0)

    def test_with_gpu_override(self, m1):
        modified = m1.with_gpu(device_mem_bytes=1234)
        assert modified.gpu.device_mem_bytes == 1234
        assert m1.gpu.device_mem_bytes != 1234  # original untouched
        assert modified.cpu is m1.cpu

    def test_with_cpu_override(self, m1):
        modified = m1.with_cpu(threads=4)
        assert modified.cpu.threads == 4

    def test_custom_scale(self):
        m = machine_m1(scale=1)
        assert m.gpu.device_mem_bytes == 3 * 1024**3
